//! Criterion micro-benchmarks of the bit-serial SIP kernel: the innermost
//! operation of the whole simulator (16-lane serial inner product) at several
//! operand precisions, against the bit-parallel reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::Precision;
use loom_core::loom_sim::loom::{reference_inner_product, serial_inner_product};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sip(c: &mut Criterion) {
    let mut group = c.benchmark_group("sip_inner_product");
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [4u8, 8, 16] {
        let p = Precision::new(bits).unwrap();
        let weights = synthetic_weights(&mut rng, 16, p, ValueDistribution::weights());
        let activations = synthetic_activations(&mut rng, 16, p, ValueDistribution::activations());
        group.bench_with_input(BenchmarkId::new("bit_serial", bits), &bits, |b, _| {
            b.iter(|| {
                serial_inner_product(
                    black_box(&weights),
                    black_box(&activations),
                    p,
                    p,
                    true,
                    false,
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("bit_parallel_reference", bits),
            &bits,
            |b, _| b.iter(|| reference_inner_product(black_box(&weights), black_box(&activations))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sip);
criterion_main!(benches);
