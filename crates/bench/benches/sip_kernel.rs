//! Criterion micro-benchmarks of the SIP kernel: the innermost operation of
//! the whole simulator (16-lane serial inner product) at several operand
//! precisions, three ways — the legacy bit-serial loop, the packed
//! AND+popcount datapath (pre-transposed operands, plus a variant paying the
//! transpose on every call), and the bit-parallel integer reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::Precision;
use loom_core::loom_sim::loom::{
    packed_inner_product, packed_inner_product_slices, reference_inner_product,
    serial_inner_product, BitplaneBlock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sip(c: &mut Criterion) {
    let mut group = c.benchmark_group("sip_inner_product");
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [4u8, 8, 16] {
        let p = Precision::new(bits).unwrap();
        let weights = synthetic_weights(&mut rng, 16, p, ValueDistribution::weights());
        let activations = synthetic_activations(&mut rng, 16, p, ValueDistribution::activations());
        group.bench_with_input(BenchmarkId::new("bit_serial", bits), &bits, |b, _| {
            b.iter(|| {
                serial_inner_product(
                    black_box(&weights),
                    black_box(&activations),
                    p,
                    p,
                    true,
                    false,
                )
            })
        });
        let w_block = BitplaneBlock::pack(&weights);
        let a_block = BitplaneBlock::pack(&activations);
        group.bench_with_input(BenchmarkId::new("packed", bits), &bits, |b, _| {
            b.iter(|| {
                packed_inner_product(black_box(&w_block), black_box(&a_block), p, p, true, false)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("packed_with_transpose", bits),
            &bits,
            |b, _| {
                b.iter(|| {
                    packed_inner_product_slices(
                        black_box(&weights),
                        black_box(&activations),
                        p,
                        p,
                        true,
                        false,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bit_parallel_reference", bits),
            &bits,
            |b, _| b.iter(|| reference_inner_product(black_box(&weights), black_box(&activations))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sip);
criterion_main!(benches);
