//! Criterion micro-benchmarks of the SIP kernel: the innermost operation of
//! the whole simulator at several operand precisions — the legacy bit-serial
//! loop, the 64-lane packed AND+popcount datapath (pre-transposed operands,
//! plus a variant paying the transpose on every call), the bit-parallel
//! integer reference, and the 256-lane SIMD-wide datapath on a full block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::Precision;
use loom_core::loom_sim::loom::{
    packed_inner_product, packed_inner_product_slices, reference_inner_product,
    serial_inner_product, wide_inner_product, BitplaneBlock, WideBitplaneBlock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sip(c: &mut Criterion) {
    let mut group = c.benchmark_group("sip_inner_product");
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [4u8, 8, 16] {
        let p = Precision::new(bits).unwrap();
        let weights = synthetic_weights(&mut rng, 16, p, ValueDistribution::weights());
        let activations = synthetic_activations(&mut rng, 16, p, ValueDistribution::activations());
        group.bench_with_input(BenchmarkId::new("bit_serial", bits), &bits, |b, _| {
            b.iter(|| {
                serial_inner_product(
                    black_box(&weights),
                    black_box(&activations),
                    p,
                    p,
                    true,
                    false,
                )
            })
        });
        let w_block = BitplaneBlock::pack(&weights);
        let a_block = BitplaneBlock::pack(&activations);
        group.bench_with_input(BenchmarkId::new("packed", bits), &bits, |b, _| {
            b.iter(|| {
                packed_inner_product(black_box(&w_block), black_box(&a_block), p, p, true, false)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("packed_with_transpose", bits),
            &bits,
            |b, _| {
                b.iter(|| {
                    packed_inner_product_slices(
                        black_box(&weights),
                        black_box(&activations),
                        p,
                        p,
                        true,
                        false,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bit_parallel_reference", bits),
            &bits,
            |b, _| b.iter(|| reference_inner_product(black_box(&weights), black_box(&activations))),
        );

        // The SIMD-wide datapath at a full 256-lane block, pre-transposed —
        // one AND+popcount covers sixteen SIPs' worth of lanes.
        let wide_weights = synthetic_weights(&mut rng, 256, p, ValueDistribution::weights());
        let wide_acts = synthetic_activations(&mut rng, 256, p, ValueDistribution::activations());
        let ww_block = WideBitplaneBlock::pack(&wide_weights);
        let wa_block = WideBitplaneBlock::pack(&wide_acts);
        group.bench_with_input(BenchmarkId::new("wide_256", bits), &bits, |b, _| {
            b.iter(|| {
                wide_inner_product(
                    black_box(&ww_block),
                    black_box(&wa_block),
                    p,
                    p,
                    true,
                    false,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sip);
criterion_main!(benches);
