//! Criterion benchmarks of the analytic per-layer cycle models: one
//! representative convolutional and fully-connected layer per accelerator.
//! These are the kernels every table/figure reproduction calls thousands of
//! times.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_core::loom_model::layer::{ConvSpec, FcSpec};
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::{GroupPrecisionSource, LayerPrecisionSpec};
use loom_core::loom_sim::config::{EquivalentConfig, LoomVariant};
use loom_core::loom_sim::loom::{conv_schedule, fc_schedule};
use loom_core::loom_sim::{dpnn, stripes};
use std::hint::black_box;

fn vgg_conv() -> ConvSpec {
    ConvSpec {
        in_channels: 256,
        in_height: 56,
        in_width: 56,
        filters: 256,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    }
}

fn bench_layers(c: &mut Criterion) {
    let cfg = EquivalentConfig::BASELINE_128;
    let conv = vgg_conv();
    let fc = FcSpec::new(25088, 4096);
    let spec = LayerPrecisionSpec {
        activation: Precision::new(9).unwrap(),
        weight: Precision::new(12).unwrap(),
        dynamic_activation: GroupPrecisionSource::Scaled { fraction: 0.75 },
        group_weight: GroupPrecisionSource::Nominal,
    };

    c.bench_function("dpnn_conv_cycles", |b| {
        b.iter(|| dpnn::conv_cycles(&cfg.dpnn(), black_box(&conv)))
    });
    c.bench_function("stripes_conv_cycles_dynamic", |b| {
        b.iter(|| {
            stripes::conv_cycles_dynamic(
                &cfg.dpnn(),
                black_box(&conv),
                spec.activation,
                &spec.dynamic_activation,
            )
        })
    });
    c.bench_function("loom1b_conv_schedule", |b| {
        let g = cfg.loom(LoomVariant::Lm1b);
        b.iter(|| conv_schedule(&g, black_box(&conv), black_box(&spec)))
    });
    c.bench_function("loom1b_fc_schedule", |b| {
        let g = cfg.loom(LoomVariant::Lm1b);
        b.iter(|| fc_schedule(&g, black_box(&fc), black_box(&spec), true))
    });
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
