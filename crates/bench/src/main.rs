//! `loom-bench` — the reproduction harness. The real entry points are the
//! per-table binaries (`table1`..`table4`, `figure4`, `figure5`, `area`,
//! `all`) and the Criterion benches; this default binary just points there.

fn main() {
    println!("loom-bench: run one of the reproduction binaries instead:");
    for bin in [
        "table1",
        "table2",
        "table3",
        "table4",
        "figure4",
        "figure5",
        "area",
        "ablation",
        "aspect_ratio",
        "sweep_bench",
        "all",
    ] {
        println!("  cargo run --release -p loom-bench --bin {bin}");
    }
    println!("or `cargo bench` for the Criterion micro-benchmarks.");
    println!(
        "Sweep binaries accept --threads N (or LOOM_THREADS) and --filter <network|accelerator>."
    );
}
