//! Runs every table and figure reproduction in sequence (the full evaluation
//! section of the paper) and writes the underlying data as CSV into
//! `results/` for external plotting.

use loom_core::experiment::{evaluate_all_networks, ExperimentSettings};
use loom_core::export::{evaluations_to_csv, figure5_to_csv, table2_to_csv, table4_to_csv};
use loom_core::loom_precision::AccuracyTarget;
use loom_core::scaling::figure5;
use loom_core::tables::{figure4, table2, table4};
use std::fs;

fn main() {
    println!(
        "==================== Loom (DAC 2018) reproduction: full evaluation ===================="
    );
    println!();
    let results_dir = std::path::Path::new("results");
    let export = fs::create_dir_all(results_dir).is_ok();

    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        let t = table2(target);
        println!("{}", t.render());
        if export {
            let name = match target {
                AccuracyTarget::Lossless => "table2_100.csv",
                AccuracyTarget::Relative99 => "table2_99.csv",
            };
            let _ = fs::write(results_dir.join(name), table2_to_csv(&t));
        }
    }
    let t4 = table4();
    println!("{}", t4.render());
    let f4 = figure4();
    println!("{}", f4.render());
    let f5 = figure5();
    println!("{}", f5.render());
    if export {
        let _ = fs::write(results_dir.join("table4.csv"), table4_to_csv(&t4));
        let _ = fs::write(results_dir.join("figure5.csv"), figure5_to_csv(&f5));
        let evals = evaluate_all_networks(&ExperimentSettings::default());
        let _ = fs::write(
            results_dir.join("figure4_all_layers.csv"),
            evaluations_to_csv(&evals),
        );
        println!("CSV data written to {}/", results_dir.display());
    }
    println!("Run `table1`, `table3`, `area`, `ablation` and `aspect_ratio` binaries for the remaining artefacts.");
}
