//! Runs every table and figure reproduction in sequence (the full evaluation
//! section of the paper) and writes the underlying data as CSV into
//! `results/` for external plotting.
//!
//! The sweep fans out across worker threads (`--threads N` or `LOOM_THREADS`,
//! defaulting to the machine's parallelism) and memoizes every
//! (network, accelerator, settings) simulation, so design points shared
//! between tables are simulated once. `--filter <network|accelerator>` runs a
//! partial sweep instead of the full matrix.

use loom_core::experiment::ExperimentSettings;
use loom_core::export::{evaluations_to_csv, figure5_to_csv, table2_to_csv, table4_to_csv};
use loom_core::loom_precision::AccuracyTarget;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::report::{fmt_ratio, TextTable};
use loom_core::scaling::figure5_with;
use loom_core::sweep::{SweepOptions, SweepRunner};
use loom_core::tables::{figure4_with, table2_with, table4_with};
use std::fs;
use std::time::Instant;

fn main() {
    let options = SweepOptions::from_env();
    let runner = SweepRunner::from_options(&options);
    println!(
        "==================== Loom (DAC 2018) reproduction: full evaluation ===================="
    );
    println!("({} worker threads)", runner.threads());
    println!();
    let started = Instant::now();

    if options.filter.is_some() {
        run_filtered(&runner, &options);
    } else {
        run_full(&runner);
    }

    println!(
        "Total wall-clock: {:.2}s ({} memoized simulations)",
        started.elapsed().as_secs_f64(),
        runner.cached_results()
    );
}

/// The full matrix: every table and figure, CSV export included.
fn run_full(runner: &SweepRunner) {
    let results_dir = std::path::Path::new("results");
    let export = fs::create_dir_all(results_dir).is_ok();

    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        let t = table2_with(runner, target);
        println!("{}", t.render());
        if export {
            let name = match target {
                AccuracyTarget::Lossless => "table2_100.csv",
                AccuracyTarget::Relative99 => "table2_99.csv",
            };
            let _ = fs::write(results_dir.join(name), table2_to_csv(&t));
        }
    }
    let t4 = table4_with(runner);
    println!("{}", t4.render());
    let f4 = figure4_with(runner);
    println!("{}", f4.render());
    let f5 = figure5_with(runner);
    println!("{}", f5.render());
    if export {
        let _ = fs::write(results_dir.join("table4.csv"), table4_to_csv(&t4));
        let _ = fs::write(results_dir.join("figure5.csv"), figure5_to_csv(&f5));
        let evals = runner.evaluate_zoo(&ExperimentSettings::default());
        let _ = fs::write(
            results_dir.join("figure4_all_layers.csv"),
            evaluations_to_csv(&evals),
        );
        println!("CSV data written to {}/", results_dir.display());
    }
    println!("Run `table1`, `table3`, `area`, `ablation` and `aspect_ratio` binaries for the remaining artefacts.");
}

/// A partial sweep: only the (network × accelerator) pairs matching the
/// filter, reported as one speedup/efficiency table (the full paper tables
/// need the whole matrix).
fn run_filtered(runner: &SweepRunner, options: &SweepOptions) {
    let zoo = loom_core::loom_model::zoo::all();
    let comparators: Vec<AcceleratorKind> = AcceleratorKind::all()
        .into_iter()
        .filter(|k| *k != AcceleratorKind::Dpnn)
        .collect();
    let names = zoo
        .iter()
        .map(|n| n.name().to_string())
        .chain(comparators.iter().map(|k| k.to_string()));
    if options.matches_nothing_in(names) {
        eprintln!(
            "warning: --filter {:?} matches no network or accelerator; running the full matrix",
            options.filter.as_deref().unwrap_or("")
        );
    }
    let (networks, kinds) = options.apply(zoo, comparators);
    println!(
        "Partial sweep (--filter {}): {} network(s) x {} accelerator(s), 100% profile\n",
        options.filter.as_deref().unwrap_or(""),
        networks.len(),
        kinds.len()
    );
    let settings = ExperimentSettings::default();
    let evals = runner.evaluate_networks_on(&networks, &kinds, &settings);
    let mut table = TextTable::new(vec!["Network", "Accelerator", "Conv", "FC", "All", "Eff"]);
    for eval in &evals {
        for kind in &kinds {
            let Some(r) = eval.result_for(*kind) else {
                continue;
            };
            table.row(vec![
                eval.network.clone(),
                kind.to_string(),
                fmt_ratio(r.conv_speedup),
                fmt_ratio(r.fc_speedup),
                fmt_ratio(r.all_speedup),
                fmt_ratio(r.all_efficiency),
            ]);
        }
    }
    println!("{}", table.render());
}
