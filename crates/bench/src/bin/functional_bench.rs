//! Functional-engine benchmark and bit-exactness gate.
//!
//! Three sections, all emitted into `BENCH_functional.json`:
//!
//! 1. **Kernels** — times the SIP kernels (legacy bit-serial vs packed
//!    AND+popcount) on 16-lane inner products at several precisions, then a
//!    mid-size convolutional layer through the functional engine on both
//!    kernel paths, verifying the runs are bit-identical.
//! 2. **Zoo** — runs whole networks (`loom_model::zoo::graphs`, including
//!    branching GoogLeNet) through the batched functional engine and compares
//!    every trace bit-for-bit against the golden graph executor.
//! 3. **Batch** — runs one network as a batch of 4 on one worker thread and
//!    again on the full thread budget, verifying bit-identical results and
//!    recording the throughput ratio.
//!
//! CI runs this as a smoke step and fails if any bit-exactness check fails.
//! `--threads N` / `LOOM_THREADS` size the worker pool, `--filter <network>`
//! restricts the zoo section, and `--reduced` swaps in the topology-preserving
//! `Mini*` networks for a quick run.

use loom_core::export::{
    functional_bench_to_json, BatchBench, FunctionalBenchReport, KernelBench, ZooFunctionalRow,
};
use loom_core::loom_model::graph::LayerGraph;
use loom_core::loom_model::inference::{InferenceOptions, NetworkParams};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::{layer::ConvSpec, Precision};
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{
    packed_inner_product, serial_inner_product, BitplaneBlock, FunctionalLoom, NetworkEngine,
    SipKernel,
};
use loom_core::sweep::SweepOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Times `routine` with batch-size calibration (so `Instant` overhead stays
/// negligible) until ~100 ms have elapsed; returns mean nanoseconds per call.
fn time_ns<O, F: FnMut() -> O>(mut routine: F) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        if start.elapsed().as_millis() >= 1 || batch >= 1 << 22 {
            break;
        }
        batch *= 4;
    }
    let mut iters = 0u64;
    let mut total = 0u128;
    while total < 100_000_000 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        total += start.elapsed().as_nanos();
        iters += batch;
    }
    total as f64 / iters.max(1) as f64
}

/// Micro-benchmarks one 16-lane inner product at `bits`-bit operands on both
/// kernels. The packed operands are pre-transposed, matching how the engine
/// amortises packing across filters and windows.
fn bench_kernel(rng: &mut StdRng, bits: u8) -> KernelBench {
    let p = Precision::new(bits).unwrap();
    let weights = synthetic_weights(rng, 16, p, ValueDistribution::weights());
    let activations = synthetic_activations(rng, 16, p, ValueDistribution::activations());
    let serial_ns = time_ns(|| {
        serial_inner_product(
            black_box(&weights),
            black_box(&activations),
            p,
            p,
            true,
            false,
        )
    });
    let w_block = BitplaneBlock::pack(&weights);
    let a_block = BitplaneBlock::pack(&activations);
    let packed_ns = time_ns(|| {
        packed_inner_product(black_box(&w_block), black_box(&a_block), p, p, true, false)
    });
    KernelBench {
        precision_bits: bits,
        serial_ns,
        packed_ns,
    }
}

/// Synthesizes an 8-bit input image for a zoo graph.
fn zoo_input(graph: &LayerGraph, seed: u64) -> Tensor3 {
    let shape = graph
        .input_shape()
        .expect("every zoo graph starts with a convolution");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor3::from_vec(
        shape,
        synthetic_activations(
            &mut rng,
            shape.len(),
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .expect("shape and length agree by construction")
}

/// Runs one zoo network through both paths and compares the traces.
fn bench_zoo_network(
    graph: &LayerGraph,
    geometry: LoomGeometry,
    threads: usize,
) -> ZooFunctionalRow {
    let pw = Precision::new(8).unwrap();
    let params = NetworkParams::synthetic_for_graph(graph, &[pw], 2018);
    let input = zoo_input(graph, 4242);
    let options = InferenceOptions::default();

    let started = Instant::now();
    let golden = graph
        .run(&params, &input, options)
        .expect("zoo graphs chain by construction");
    let golden_seconds = started.elapsed().as_secs_f64();

    let engine = NetworkEngine::new(geometry).with_threads(threads);
    let started = Instant::now();
    let run = engine
        .run(graph, &params, &input, options)
        .expect("zoo graphs chain by construction");
    let functional_seconds = started.elapsed().as_secs_f64();

    ZooFunctionalRow {
        network: graph.name().to_string(),
        nodes: graph.nodes().len(),
        macs: graph.total_macs(),
        golden_seconds,
        functional_seconds,
        cycles: run.cycles,
        reduced_groups: run.reduced_groups,
        matches_reference: run.trace == golden,
    }
}

fn main() {
    let mut options = SweepOptions::from_env();
    let reduced = std::env::args().any(|a| a == "--reduced");
    let mut rng = StdRng::seed_from_u64(2018);

    println!("SIP kernel: 16-lane inner product, bit-serial vs packed");
    let kernels: Vec<KernelBench> = [4u8, 8, 16]
        .iter()
        .map(|&bits| {
            let k = bench_kernel(&mut rng, bits);
            println!(
                "  {bits:>2}-bit: serial {:>9.1} ns  packed {:>7.1} ns  -> {:.1}x",
                k.serial_ns,
                k.packed_ns,
                k.speedup()
            );
            k
        })
        .collect();

    // A mid-size conv layer (VGG-scale channel counts on a small feature map)
    // through both engine paths, dynamic precision enabled.
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let pa = Precision::new(8).unwrap();
    let pw = Precision::new(8).unwrap();
    let input = Tensor3::from_vec(
        spec.input_shape(),
        synthetic_activations(
            &mut rng,
            spec.input_shape().len(),
            pa,
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            pw,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    let geometry = LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    };
    let conv_layer = format!(
        "conv {}x{}x{} -> {} filters k{} ({} MACs), Pa={pa} Pw={pw}",
        spec.in_channels,
        spec.in_height,
        spec.in_width,
        spec.filters,
        spec.kernel_h,
        spec.macs()
    );
    println!("Functional engine: {conv_layer}");

    let serial_engine = FunctionalLoom::new(geometry).with_kernel(SipKernel::BitSerial);
    let started = Instant::now();
    let serial_run = serial_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_serial_seconds = started.elapsed().as_secs_f64();

    let packed_engine = FunctionalLoom::new(geometry);
    let started = Instant::now();
    let packed_run = packed_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_packed_seconds = started.elapsed().as_secs_f64();

    let kernels_agree = serial_run == packed_run;
    println!(
        "  serial engine : {conv_serial_seconds:.3}s\n  packed engine : {conv_packed_seconds:.3}s\n  identical     : {kernels_agree}"
    );

    // Whole networks: golden graph executor vs the batched functional engine,
    // bit-exact trace comparison per network.
    let zoo_names: &[&str] = if reduced {
        &graphs::REDUCED_NAMES
    } else {
        &["NiN", "AlexNet", "GoogLeNet", "VGGS"]
    };
    let resolve = |name: &str| {
        if reduced {
            graphs::reduced_by_name(name)
        } else {
            graphs::by_name(name)
        }
        .expect("zoo suite names always resolve")
    };
    // A typo'd --filter must not silently skip the bit-exactness gate: warn
    // and run the full suite instead, like the sweep binaries do.
    if options.matches_nothing_in(zoo_names.iter().copied()) {
        eprintln!(
            "warning: --filter {:?} matches no zoo network; running the full suite",
            options.filter.as_deref().unwrap_or("")
        );
        options.filter = None;
    }
    println!(
        "Zoo functional suite ({} scale, {} threads):",
        if reduced { "reduced" } else { "full" },
        options.threads
    );
    let zoo: Vec<ZooFunctionalRow> = zoo_names
        .iter()
        .filter(|n| options.matches(n))
        .map(|name| {
            let graph = resolve(name);
            let row = bench_zoo_network(&graph, geometry, options.threads);
            println!(
                "  {:<14} {:>3} nodes {:>6.1} MMACs  golden {:>7.2}s  functional {:>7.2}s  {}",
                row.network,
                row.nodes,
                row.macs as f64 / 1e6,
                row.golden_seconds,
                row.functional_seconds,
                if row.matches_reference {
                    "bit-exact"
                } else {
                    "MISMATCH"
                }
            );
            row
        })
        .collect();

    // Batched throughput: one network, batch of 4, one worker vs the full
    // budget. Bit-identical results are required; the speedup tracks how many
    // cores the machine actually has (`available_parallelism` is recorded so
    // a single-core runner's ~1x is interpretable).
    let batch = if options.filter.is_none() {
        let name = if reduced { "MiniAlexNet" } else { "AlexNet" };
        let graph = resolve(name);
        let params =
            NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 2018);
        let inputs: Vec<Tensor3> = (0..4).map(|i| zoo_input(&graph, 9000 + i)).collect();
        let run_options = InferenceOptions::default();
        let threads = options.threads.max(2);

        let started = Instant::now();
        let serial = NetworkEngine::new(geometry)
            .run_batch(&graph, &params, &inputs, run_options)
            .expect("zoo graphs chain by construction");
        let serial_seconds = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let parallel = NetworkEngine::new(geometry)
            .with_threads(threads)
            .run_batch(&graph, &params, &inputs, run_options)
            .expect("zoo graphs chain by construction");
        let parallel_seconds = started.elapsed().as_secs_f64();

        let bench = BatchBench {
            network: graph.name().to_string(),
            batch: inputs.len(),
            threads,
            serial_seconds,
            parallel_seconds,
            identical: serial == parallel,
        };
        println!(
            "Batched engine: {} x{} on {} threads: 1-thread {:.2}s, parallel {:.2}s -> {:.2}x, identical: {}",
            bench.network,
            bench.batch,
            bench.threads,
            bench.serial_seconds,
            bench.parallel_seconds,
            bench.speedup(),
            bench.identical
        );
        Some(bench)
    } else {
        None
    };

    let report = FunctionalBenchReport {
        kernels,
        conv_layer,
        conv_serial_seconds,
        conv_packed_seconds,
        kernels_agree,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        zoo,
        batch,
    };
    println!(
        "Conv layer, packed vs bit-serial engine: {:.1}x",
        report.conv_speedup()
    );

    let json = functional_bench_to_json(&report);
    match std::fs::write("BENCH_functional.json", &json) {
        Ok(()) => println!("Wrote BENCH_functional.json"),
        Err(e) => {
            // Exit non-zero: a committed baseline exists at the repo root, so
            // silently keeping it would let CI archive stale data as fresh.
            eprintln!("ERROR: could not write BENCH_functional.json: {e}");
            std::process::exit(1);
        }
    }

    if !report.all_agree() {
        eprintln!(
            "ERROR: a bit-exactness check failed (SIP kernels, a zoo network \
             vs the golden model, or the parallel batch vs the serial one)"
        );
        std::process::exit(1);
    }
}
