//! Functional-engine benchmark, bit-exactness gate and perf regression guard.
//!
//! Five sections, all emitted into `BENCH_functional.json` together with
//! machine provenance (detected CPU features, per-tier kernel availability,
//! the active kernel tier, physical core count):
//!
//! 1. **Kernels** — times 256-lane inner products at several precisions on
//!    the legacy bit-serial loop, the 64-lane packed AND+popcount datapath
//!    (four blocks), and the 256-lane SIMD-wide datapath (one block); then a
//!    mid-size convolutional layer through the functional engine on all three
//!    kernel paths, verifying the runs are bit-identical.
//! 2. **Zoo** — runs whole networks (`loom_model::zoo::graphs`, including
//!    branching GoogLeNet) through the batched functional engine and compares
//!    every trace bit-for-bit against the golden graph executor.
//! 3. **Datapaths** — runs one network through the functional datapath of
//!    every backend in the default accelerator [`Registry`] (DPNN, Stripes,
//!    DStripes, the Loom variants), recording wall-clock, executed cycles and
//!    the measured speedup over DPNN, bit-exact against the golden executor.
//! 4. **Batch** — runs one network as a batch of 4 across a thread scaling
//!    curve (1/2/4, capped at `--threads`), verifying bit-identical results
//!    at every point.
//! 5. **Latency** — the same network as a *batch of 1* across the same
//!    curve: the cost model splits large layers into intra-layer tasks, so
//!    single-inference latency scales too, bit-identical at every width.
//!
//! CI runs this as a smoke step and fails if any bit-exactness check fails
//! **or** a committed perf floor is broken: `--min-conv-speedup` (default
//! 12×, wide engine over bit-serial), and on multi-core runners
//! `--min-batch-speedup` / `--min-latency-speedup` (no default — the batch
//! and batch-of-1 scaling at the widest thread count).
//!
//! `--threads N` / `LOOM_THREADS` size the worker pool with the shared
//! precedence (flag beats env beats available parallelism). Asking for more
//! threads than the machine has is a hard error (exit 2) — a silently
//! oversubscribed scaling curve reads like a regression — unless
//! `--allow-oversubscribe` is given, which records `oversubscribed: true`
//! and skips the scaling floors loudly. `--filter <network>` restricts the
//! zoo section, and `--reduced` swaps in the topology-preserving `Mini*`
//! networks for a quick run.

use loom_core::export::{
    functional_bench_to_json, BatchBench, DatapathThroughputRow, FunctionalBenchReport,
    KernelBench, ScalingPoint, WeightStoreBench, ZooFunctionalRow,
};
use loom_core::loom_model::graph::LayerGraph;
use loom_core::loom_model::inference::{InferenceOptions, NetworkParams};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::{layer::ConvSpec, Precision};
use loom_core::loom_sim::accelerator::Registry;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::datapath;
use loom_core::loom_sim::loom::{
    packed_inner_product, serial_inner_product, weight_store_stats, wide_inner_product,
    BitplaneBlock, FunctionalLoom, NetworkEngine, SipKernel, WideBitplaneBlock, KERNEL_TIERS,
};
use loom_core::loom_sim::EquivalentConfig;
use loom_core::sweep::SweepOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Default floor for the conv-layer wide-over-serial speedup; CI fails the
/// job below it.
const DEFAULT_MIN_CONV_SPEEDUP: f64 = 12.0;

/// Lanes per kernel micro-benchmark inner product.
const KERNEL_LANES: usize = 256;

/// Times `routine` with batch-size calibration (so `Instant` overhead stays
/// negligible) until ~100 ms have elapsed; returns mean nanoseconds per call.
fn time_ns<O, F: FnMut() -> O>(mut routine: F) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        if start.elapsed().as_millis() >= 1 || batch >= 1 << 22 {
            break;
        }
        batch *= 4;
    }
    let mut iters = 0u64;
    let mut total = 0u128;
    while total < 100_000_000 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        total += start.elapsed().as_nanos();
        iters += batch;
    }
    total as f64 / iters.max(1) as f64
}

/// [`time_ns`] repeated three times, keeping the fastest — the minimum is the
/// standard noise-robust estimator when the benchmarking core is shared.
fn robust_ns<O, F: FnMut() -> O>(mut routine: F) -> f64 {
    (0..3)
        .map(|_| time_ns(&mut routine))
        .fold(f64::INFINITY, f64::min)
}

/// Micro-benchmarks one 256-lane inner product at `bits`-bit operands on all
/// three kernels. The packed and wide operands are pre-transposed, matching
/// how the engine amortises packing; the 64-lane kernel tiles the lanes as
/// four blocks.
fn bench_kernel(rng: &mut StdRng, bits: u8) -> KernelBench {
    let p = Precision::new(bits).unwrap();
    let weights = synthetic_weights(rng, KERNEL_LANES, p, ValueDistribution::weights());
    let activations = synthetic_activations(rng, KERNEL_LANES, p, ValueDistribution::activations());
    let serial_ns = robust_ns(|| {
        serial_inner_product(
            black_box(&weights),
            black_box(&activations),
            p,
            p,
            true,
            false,
        )
    });
    let w_blocks: Vec<BitplaneBlock> = weights.chunks(64).map(BitplaneBlock::pack).collect();
    let a_blocks: Vec<BitplaneBlock> = activations.chunks(64).map(BitplaneBlock::pack).collect();
    let packed_ns = robust_ns(|| {
        w_blocks
            .iter()
            .zip(a_blocks.iter())
            .map(|(w, a)| packed_inner_product(black_box(w), black_box(a), p, p, true, false))
            .sum::<i64>()
    });
    let w_wide = WideBitplaneBlock::pack(&weights);
    let a_wide = WideBitplaneBlock::pack(&activations);
    let wide_ns =
        robust_ns(|| wide_inner_product(black_box(&w_wide), black_box(&a_wide), p, p, true, false));
    KernelBench {
        precision_bits: bits,
        lanes: KERNEL_LANES,
        serial_ns,
        packed_ns,
        wide_ns,
    }
}

/// Synthesizes an 8-bit input image for a zoo graph.
fn zoo_input(graph: &LayerGraph, seed: u64) -> Tensor3 {
    let shape = graph
        .input_shape()
        .expect("every zoo graph starts with a convolution");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor3::from_vec(
        shape,
        synthetic_activations(
            &mut rng,
            shape.len(),
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .expect("shape and length agree by construction")
}

/// Runs one zoo network through both paths and compares the traces.
fn bench_zoo_network(
    graph: &LayerGraph,
    geometry: LoomGeometry,
    threads: usize,
) -> ZooFunctionalRow {
    let pw = Precision::new(8).unwrap();
    let params = NetworkParams::synthetic_for_graph(graph, &[pw], 2018);
    let input = zoo_input(graph, 4242);
    let options = InferenceOptions::default();

    let started = Instant::now();
    let golden = graph
        .run(&params, &input, options)
        .expect("zoo graphs chain by construction");
    let golden_seconds = started.elapsed().as_secs_f64();

    let engine = NetworkEngine::new(geometry).with_threads(threads);
    let started = Instant::now();
    let run = engine
        .run(graph, &params, &input, options)
        .expect("zoo graphs chain by construction");
    let functional_seconds = started.elapsed().as_secs_f64();

    ZooFunctionalRow {
        network: graph.name().to_string(),
        nodes: graph.nodes().len(),
        macs: graph.total_macs(),
        golden_seconds,
        functional_seconds,
        cycles: run.cycles,
        reduced_groups: run.reduced_groups,
        matches_reference: run.trace == golden,
    }
}

/// Parses a `--<name> <x>` (or `--<name>=<x>`) float flag. `None` when the
/// flag is absent; a flag present with a missing or unparsable value exits
/// non-zero — silently guarding at a default would let a mistyped CI floor
/// pass unnoticed.
fn float_flag(name: &str) -> Option<f64> {
    let reject = |value: &str| -> ! {
        eprintln!("ERROR: --{name} needs a numeric value, got {value:?}");
        std::process::exit(2);
    };
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args.next().unwrap_or_default();
            return Some(value.parse().unwrap_or_else(|_| reject(&value)));
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.parse().unwrap_or_else(|_| reject(value)));
        }
    }
    None
}

/// Measures one network across a thread scaling curve at the given batch
/// size, asserting bit-identical runs at every width.
fn scaling_bench(
    graph: &LayerGraph,
    geometry: LoomGeometry,
    batch: usize,
    seed_base: u64,
    thread_curve: &[usize],
) -> BatchBench {
    let params = NetworkParams::synthetic_for_graph(graph, &[Precision::new(8).unwrap()], 2018);
    let inputs: Vec<Tensor3> = (0..batch as u64)
        .map(|i| zoo_input(graph, seed_base + i))
        .collect();
    let run_options = InferenceOptions::default();
    let mut scaling = Vec::with_capacity(thread_curve.len());
    let mut reference = None;
    let mut identical = true;
    for &threads in thread_curve {
        let started = Instant::now();
        let runs = NetworkEngine::new(geometry)
            .with_threads(threads)
            .run_batch(graph, &params, &inputs, run_options)
            .expect("zoo graphs chain by construction");
        let seconds = started.elapsed().as_secs_f64();
        scaling.push(ScalingPoint { threads, seconds });
        match &reference {
            None => reference = Some(runs),
            Some(r) => identical &= *r == runs,
        }
    }
    let serial_seconds = scaling[0].seconds;
    let &ScalingPoint { threads, seconds } = scaling.last().expect("curve is non-empty");
    BatchBench {
        network: graph.name().to_string(),
        batch: inputs.len(),
        threads,
        serial_seconds,
        parallel_seconds: seconds,
        identical,
        scaling,
    }
}

/// Prints one scaling section's curve on a single line.
fn print_scaling(label: &str, bench: &BatchBench) {
    print!("{label}: {} x{} scaling curve:", bench.network, bench.batch);
    for p in &bench.scaling {
        print!(
            "  {}t {:.2}s ({:.2}x)",
            p.threads,
            p.seconds,
            if p.seconds > 0.0 {
                bench.serial_seconds / p.seconds
            } else {
                1.0
            }
        );
    }
    println!("  identical: {}", bench.identical);
}

fn main() {
    let mut options = SweepOptions::from_env();
    let reduced = std::env::args().any(|a| a == "--reduced");
    let speedup_floor = float_flag("min-conv-speedup").unwrap_or(DEFAULT_MIN_CONV_SPEEDUP);
    let batch_floor = float_flag("min-batch-speedup");
    let latency_floor = float_flag("min-latency-speedup");

    // Oversubscription policy: a scaling curve measured with more workers
    // than the machine has cores reads like a perf regression, so asking for
    // one is a hard error rather than a silent 1-thread (or thrashing) run.
    let available = loom_core::threads::available();
    let allow_oversubscribe = std::env::args().any(|a| a == "--allow-oversubscribe");
    let oversubscribed = options.threads > available;
    if oversubscribed {
        if allow_oversubscribe {
            eprintln!(
                "WARNING: --threads {} exceeds available parallelism {available}; \
                 scaling numbers will not be meaningful and the scaling floors are skipped",
                options.threads
            );
        } else {
            eprintln!(
                "ERROR: --threads {} exceeds available parallelism {available} \
                 (pass --allow-oversubscribe to force an oversubscribed run)",
                options.threads
            );
            std::process::exit(2);
        }
    }

    let machine_features = loom_core::loom_sim::loom::cpu_features();
    let active_tier = loom_core::loom_sim::loom::active_kernel_tier();
    println!(
        "Machine: {available} logical CPUs, {} physical cores; kernel tier {} \
         (popcnt={} avx2={} avx512f={} avx512bw={} avx512vpopcntdq={})",
        loom_core::threads::physical_cores(),
        active_tier.name(),
        machine_features.popcnt,
        machine_features.avx2,
        machine_features.avx512f,
        machine_features.avx512bw,
        machine_features.avx512vpopcntdq,
    );

    let mut rng = StdRng::seed_from_u64(2018);

    println!("SIP kernel: {KERNEL_LANES}-lane inner product, bit-serial vs packed vs wide");
    let kernels: Vec<KernelBench> = [4u8, 8, 16]
        .iter()
        .map(|&bits| {
            let k = bench_kernel(&mut rng, bits);
            println!(
                "  {bits:>2}-bit: serial {:>9.1} ns  packed {:>7.1} ns  wide {:>7.1} ns  -> wide {:.1}x serial, {:.1}x packed",
                k.serial_ns,
                k.packed_ns,
                k.wide_ns,
                k.wide_speedup(),
                k.wide_vs_packed()
            );
            k
        })
        .collect();

    // A mid-size conv layer (VGG-scale channel counts on a small feature map)
    // through all three engine paths, dynamic precision enabled.
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let pa = Precision::new(8).unwrap();
    let pw = Precision::new(8).unwrap();
    let input = Tensor3::from_vec(
        spec.input_shape(),
        synthetic_activations(
            &mut rng,
            spec.input_shape().len(),
            pa,
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            pw,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    let geometry = LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    };
    let conv_layer = format!(
        "conv {}x{}x{} -> {} filters k{} ({} MACs), Pa={pa} Pw={pw}",
        spec.in_channels,
        spec.in_height,
        spec.in_width,
        spec.filters,
        spec.kernel_h,
        spec.macs()
    );
    println!("Functional engine: {conv_layer}");

    let serial_engine = FunctionalLoom::new(geometry).with_kernel(SipKernel::BitSerial);
    let started = Instant::now();
    let serial_run = serial_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_serial_seconds = started.elapsed().as_secs_f64();

    let packed_engine = FunctionalLoom::new(geometry).with_kernel(SipKernel::Packed);
    let started = Instant::now();
    let packed_run = packed_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_packed_seconds = started.elapsed().as_secs_f64();

    let wide_engine = FunctionalLoom::new(geometry);
    let started = Instant::now();
    let wide_run = wide_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_wide_seconds = started.elapsed().as_secs_f64();

    let kernels_agree = serial_run == packed_run && packed_run == wide_run;
    println!(
        "  serial engine : {conv_serial_seconds:.3}s\n  packed engine : {conv_packed_seconds:.3}s\n  wide engine   : {conv_wide_seconds:.3}s\n  identical     : {kernels_agree}"
    );

    // Whole networks: golden graph executor vs the batched functional engine,
    // bit-exact trace comparison per network.
    let zoo_names: &[&str] = if reduced {
        &graphs::REDUCED_NAMES
    } else {
        &["NiN", "AlexNet", "GoogLeNet", "VGGS"]
    };
    // One zoo-by-name lookup shared with the serving layer's model catalog
    // (`loom_model::zoo::graphs::lookup`): the suite name lists above select
    // full-scale vs reduced, the resolution itself is common code.
    let resolve = |name: &str| graphs::lookup(name).expect("zoo suite names always resolve");
    // A typo'd --filter must not silently skip the bit-exactness gate: warn
    // and run the full suite instead, like the sweep binaries do.
    if options.matches_nothing_in(zoo_names.iter().copied()) {
        eprintln!(
            "warning: --filter {:?} matches no zoo network; running the full suite",
            options.filter.as_deref().unwrap_or("")
        );
        options.filter = None;
    }
    println!(
        "Zoo functional suite ({} scale, {} threads):",
        if reduced { "reduced" } else { "full" },
        options.threads
    );
    let zoo: Vec<ZooFunctionalRow> = zoo_names
        .iter()
        .filter(|n| options.matches(n))
        .map(|name| {
            let graph = resolve(name);
            let row = bench_zoo_network(&graph, geometry, options.threads);
            println!(
                "  {:<14} {:>3} nodes {:>6.1} MMACs  golden {:>7.2}s  functional {:>7.2}s  {}",
                row.network,
                row.nodes,
                row.macs as f64 / 1e6,
                row.golden_seconds,
                row.functional_seconds,
                if row.matches_reference {
                    "bit-exact"
                } else {
                    "MISMATCH"
                }
            );
            row
        })
        .collect();

    // Per-accelerator functional throughput: every registered backend that
    // exposes a functional datapath runs one network end to end, bit-exact
    // against the golden executor, with cycles and wall-clock per backend.
    // The measured speedup-vs-DPNN series backs Table 2 / Figure 4 with
    // executed (not just modelled) cycle counts.
    let datapaths = if options.filter.is_none() {
        let name = if reduced { "MiniAlexNet" } else { "AlexNet" };
        let graph = resolve(name);
        let params =
            NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 2018);
        let inputs: Vec<Tensor3> = (0..2).map(|i| zoo_input(&graph, 7000 + i)).collect();
        let run_options = InferenceOptions::default();
        let golden = graph
            .run_batch(&params, &inputs, run_options)
            .expect("zoo graphs chain by construction");

        let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
        println!(
            "Datapath throughput: {} registered backends on {} x{}:",
            registry.len(),
            graph.name(),
            inputs.len()
        );
        let mut rows: Vec<DatapathThroughputRow> = Vec::new();
        for acc in registry.iter() {
            let Some(backend) = acc.functional_datapath(options.threads) else {
                continue;
            };
            let started = Instant::now();
            let runs = datapath::run_network_batch(
                backend.as_ref(),
                &graph,
                &params,
                &inputs,
                run_options,
            )
            .expect("zoo graphs chain by construction");
            let seconds = started.elapsed().as_secs_f64();
            rows.push(DatapathThroughputRow {
                accelerator: acc.name(),
                network: graph.name().to_string(),
                seconds,
                cycles: runs.iter().map(|r| r.cycles).sum(),
                reduced_groups: runs.iter().map(|r| r.reduced_groups).sum(),
                speedup_vs_dpnn: 1.0,
                matches_reference: runs.iter().map(|r| &r.trace).eq(golden.iter()),
            });
        }
        let dpnn_cycles = rows
            .iter()
            .find(|r| r.accelerator == "DPNN")
            .map(|r| r.cycles);
        for row in &mut rows {
            if let Some(base) = dpnn_cycles {
                if row.cycles > 0 {
                    row.speedup_vs_dpnn = base as f64 / row.cycles as f64;
                }
            }
            println!(
                "  {:<14} {:>7.2}s  {:>12} cycles  {:>5.2}x vs DPNN  {}",
                row.accelerator,
                row.seconds,
                row.cycles,
                row.speedup_vs_dpnn,
                if row.matches_reference {
                    "bit-exact"
                } else {
                    "MISMATCH"
                }
            );
        }
        rows
    } else {
        Vec::new()
    };

    // Batched throughput and batch-of-1 latency: one network across a thread
    // scaling curve, capped at the resolved thread budget so an
    // un-oversubscribed run never measures more workers than cores.
    // Bit-identical results are required at every point. The latency section
    // runs the *same single inference* at each width — only the cost model's
    // intra-layer task decomposition makes that curve move.
    let thread_curve: Vec<usize> = [1usize, 2, 4, options.threads]
        .into_iter()
        .filter(|&t| t <= options.threads)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let (batch, latency) = if options.filter.is_none() {
        let name = if reduced { "MiniAlexNet" } else { "AlexNet" };
        let graph = resolve(name);
        let batch = scaling_bench(&graph, geometry, 4, 9000, &thread_curve);
        print_scaling("Batched engine", &batch);
        let latency = scaling_bench(&graph, geometry, 1, 9500, &thread_curve);
        print_scaling("Batch-of-1 latency", &latency);
        (Some(batch), Some(latency))
    } else {
        (None, None)
    };

    // Pack-once probe: prepacking the same model twice must be served from
    // the process-wide weight store the second time — CI gates on this with
    // --require-repack-avoidance.
    let probe_graph = resolve(if reduced { "MiniAlexNet" } else { "AlexNet" });
    let probe_params =
        NetworkParams::synthetic_for_graph(&probe_graph, &[Precision::new(8).unwrap()], 2018);
    let probe_engine = NetworkEngine::new(geometry);
    let first_pack = probe_engine.prepack(&probe_graph, &probe_params);
    let before_probe = weight_store_stats();
    let second_pack = probe_engine.prepack(&probe_graph, &probe_params);
    let after_probe = weight_store_stats();
    let repack_avoided = after_probe.packs() == before_probe.packs()
        && after_probe.hits() >= before_probe.hits() + second_pack.packed_layers() as u64
        && first_pack.packed_layers() > 0;
    let store = after_probe;
    let weight_store = WeightStoreBench {
        packs: store.packs(),
        hits: store.hits(),
        evictions: store.evictions,
        entries: store.entries,
        resident_bytes: store.resident_bytes,
        pack_seconds: store.pack.pack_nanos as f64 / 1e9,
        dense_bytes: store.pack.dense_bytes,
        compressed_bytes: store.pack.compressed_bytes,
        compression_ratio: store.pack.ratio(),
        repack_avoided,
    };
    println!(
        "Weight store: {} packs / {} hits, {} resident entries ({:.1} KB); \
         pack time {:.3}s; compressed {:.1} -> {:.1} KB resident \
         (stream ratio {:.2}); repack avoided: {repack_avoided}",
        weight_store.packs,
        weight_store.hits,
        weight_store.entries,
        weight_store.resident_bytes as f64 / 1024.0,
        weight_store.pack_seconds,
        weight_store.dense_bytes as f64 / 1024.0,
        weight_store.compressed_bytes as f64 / 1024.0,
        weight_store.compression_ratio,
    );

    let report = FunctionalBenchReport {
        kernels,
        conv_layer,
        conv_serial_seconds,
        conv_packed_seconds,
        conv_wide_seconds,
        kernels_agree,
        available_parallelism: available,
        physical_cores: loom_core::threads::physical_cores(),
        oversubscribed,
        cpu_features: vec![
            ("popcnt".to_string(), machine_features.popcnt),
            ("avx2".to_string(), machine_features.avx2),
            ("avx512f".to_string(), machine_features.avx512f),
            ("avx512bw".to_string(), machine_features.avx512bw),
            (
                "avx512vpopcntdq".to_string(),
                machine_features.avx512vpopcntdq,
            ),
        ],
        kernel_tiers: KERNEL_TIERS
            .iter()
            .map(|t| (t.name().to_string(), t.detected()))
            .collect(),
        active_kernel_tier: active_tier.name().to_string(),
        zoo,
        datapaths,
        batch,
        latency,
        weight_store,
    };
    println!(
        "Conv layer, wide vs bit-serial engine: {:.1}x (64-lane packed: {:.1}x)",
        report.conv_speedup(),
        report.conv_packed_speedup()
    );

    let json = functional_bench_to_json(&report);
    match std::fs::write("BENCH_functional.json", &json) {
        Ok(()) => println!("Wrote BENCH_functional.json"),
        Err(e) => {
            // Exit non-zero: a committed baseline exists at the repo root, so
            // silently keeping it would let CI archive stale data as fresh.
            eprintln!("ERROR: could not write BENCH_functional.json: {e}");
            std::process::exit(1);
        }
    }

    if !report.all_agree() {
        eprintln!(
            "ERROR: a bit-exactness check failed (SIP kernels, a zoo network \
             vs the golden model, or a parallel batch vs the serial one)"
        );
        std::process::exit(1);
    }
    // Pack-once guard: repacking a model whose weights are already in the
    // store is a perf regression even when results stay bit-exact.
    if std::env::args().any(|a| a == "--require-repack-avoidance")
        && !report.weight_store.repack_avoided
    {
        eprintln!(
            "ERROR: the second prepack of the probe model was not served from \
             the weight store (repack avoidance regressed)"
        );
        std::process::exit(1);
    }
    // Perf regression guard: the wide engine regressing below the committed
    // floor fails CI even when every result is still bit-exact.
    if report.conv_speedup() < speedup_floor {
        eprintln!(
            "ERROR: conv_speedup {:.1}x fell below the committed floor of {speedup_floor:.1}x",
            report.conv_speedup()
        );
        std::process::exit(1);
    }
    // Scaling floors (multi-core CI only): the batch and batch-of-1 curves
    // at the widest thread count. Meaningless on an oversubscribed run, so
    // skipped there — loudly, never silently.
    if oversubscribed {
        if batch_floor.is_some() || latency_floor.is_some() {
            eprintln!(
                "WARNING: skipping --min-batch-speedup/--min-latency-speedup: \
                 the run was oversubscribed"
            );
        }
        return;
    }
    for (name, floor, section) in [
        ("batch", batch_floor, report.batch.as_ref()),
        ("latency", latency_floor, report.latency.as_ref()),
    ] {
        let Some(floor) = floor else { continue };
        let Some(section) = section else {
            eprintln!("ERROR: --min-{name}-speedup given but the {name} section did not run");
            std::process::exit(1);
        };
        if section.speedup() < floor {
            eprintln!(
                "ERROR: {name} speedup {:.2}x at {} threads fell below the committed floor of {floor:.2}x",
                section.speedup(),
                section.threads
            );
            std::process::exit(1);
        }
    }
}
