//! Functional-engine benchmark: times the SIP kernels (legacy bit-serial vs
//! packed AND+popcount) on 16-lane inner products at several precisions, then
//! runs a mid-size convolutional layer through the functional Loom engine on
//! both kernel paths, verifies the runs are bit-identical, and emits a
//! machine-readable `BENCH_functional.json` with the wall-clocks and
//! speedups. CI runs this as a smoke step and fails if the kernels ever
//! disagree.

use loom_core::export::{functional_bench_to_json, FunctionalBenchReport, KernelBench};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::{layer::ConvSpec, Precision};
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{
    packed_inner_product, serial_inner_product, BitplaneBlock, FunctionalLoom, SipKernel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Times `routine` with batch-size calibration (so `Instant` overhead stays
/// negligible) until ~100 ms have elapsed; returns mean nanoseconds per call.
fn time_ns<O, F: FnMut() -> O>(mut routine: F) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        if start.elapsed().as_millis() >= 1 || batch >= 1 << 22 {
            break;
        }
        batch *= 4;
    }
    let mut iters = 0u64;
    let mut total = 0u128;
    while total < 100_000_000 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        total += start.elapsed().as_nanos();
        iters += batch;
    }
    total as f64 / iters.max(1) as f64
}

/// Micro-benchmarks one 16-lane inner product at `bits`-bit operands on both
/// kernels. The packed operands are pre-transposed, matching how the engine
/// amortises packing across filters and windows.
fn bench_kernel(rng: &mut StdRng, bits: u8) -> KernelBench {
    let p = Precision::new(bits).unwrap();
    let weights = synthetic_weights(rng, 16, p, ValueDistribution::weights());
    let activations = synthetic_activations(rng, 16, p, ValueDistribution::activations());
    let serial_ns = time_ns(|| {
        serial_inner_product(
            black_box(&weights),
            black_box(&activations),
            p,
            p,
            true,
            false,
        )
    });
    let w_block = BitplaneBlock::pack(&weights);
    let a_block = BitplaneBlock::pack(&activations);
    let packed_ns = time_ns(|| {
        packed_inner_product(black_box(&w_block), black_box(&a_block), p, p, true, false)
    });
    KernelBench {
        precision_bits: bits,
        serial_ns,
        packed_ns,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);
    println!("SIP kernel: 16-lane inner product, bit-serial vs packed");
    let kernels: Vec<KernelBench> = [4u8, 8, 16]
        .iter()
        .map(|&bits| {
            let k = bench_kernel(&mut rng, bits);
            println!(
                "  {bits:>2}-bit: serial {:>9.1} ns  packed {:>7.1} ns  -> {:.1}x",
                k.serial_ns,
                k.packed_ns,
                k.speedup()
            );
            k
        })
        .collect();

    // A mid-size conv layer (VGG-scale channel counts on a small feature map)
    // through both engine paths, dynamic precision enabled.
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let pa = Precision::new(8).unwrap();
    let pw = Precision::new(8).unwrap();
    let input = Tensor3::from_vec(
        spec.input_shape(),
        synthetic_activations(
            &mut rng,
            spec.input_shape().len(),
            pa,
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            pw,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    let geometry = LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    };
    let conv_layer = format!(
        "conv {}x{}x{} -> {} filters k{} ({} MACs), Pa={pa} Pw={pw}",
        spec.in_channels,
        spec.in_height,
        spec.in_width,
        spec.filters,
        spec.kernel_h,
        spec.macs()
    );
    println!("Functional engine: {conv_layer}");

    let serial_engine = FunctionalLoom::new(geometry).with_kernel(SipKernel::BitSerial);
    let started = Instant::now();
    let serial_run = serial_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_serial_seconds = started.elapsed().as_secs_f64();

    let packed_engine = FunctionalLoom::new(geometry);
    let started = Instant::now();
    let packed_run = packed_engine.run_conv(&spec, &input, &weights, pa, pw);
    let conv_packed_seconds = started.elapsed().as_secs_f64();

    let kernels_agree = serial_run == packed_run;
    let report = FunctionalBenchReport {
        kernels,
        conv_layer,
        conv_serial_seconds,
        conv_packed_seconds,
        kernels_agree,
    };
    println!(
        "  serial engine : {:.3}s\n  packed engine : {:.3}s -> {:.1}x\n  identical     : {}",
        report.conv_serial_seconds,
        report.conv_packed_seconds,
        report.conv_speedup(),
        report.kernels_agree
    );

    let json = functional_bench_to_json(&report);
    match std::fs::write("BENCH_functional.json", &json) {
        Ok(()) => println!("Wrote BENCH_functional.json"),
        Err(e) => {
            // Exit non-zero: a committed baseline exists at the repo root, so
            // silently keeping it would let CI archive stale data as fresh.
            eprintln!("ERROR: could not write BENCH_functional.json: {e}");
            std::process::exit(1);
        }
    }

    if !kernels_agree {
        eprintln!("ERROR: packed SIP kernel diverged from the legacy bit-serial kernel");
        std::process::exit(1);
    }
}
