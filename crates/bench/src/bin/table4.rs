//! Reproduces Table 4: all-layer speedup and energy efficiency of the Loom
//! variants over DPNN when the per-group effective weight precisions of
//! Table 3 are exploited.

use loom_core::tables::table4;

fn main() {
    println!("{}", table4().render());
}
