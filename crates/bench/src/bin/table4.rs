//! Reproduces Table 4: all-layer speedup and energy efficiency of the Loom
//! variants over DPNN when the per-group effective weight precisions of
//! Table 3 are exploited.
//!
//! Accepts `--threads N` / `LOOM_THREADS` to fan the sweep across workers.

use loom_core::sweep::{SweepOptions, SweepRunner};
use loom_core::tables::table4_with;

fn main() {
    let runner = SweepRunner::from_options(&SweepOptions::from_env());
    println!("{}", table4_with(&runner).render());
}
