//! Reproduces Table 1: the per-layer activation and per-network weight
//! precision profiles for the 100% and 99% accuracy targets, and demonstrates
//! the profiling method itself on a runnable synthetic network.

use loom_core::loom_model::inference::NetworkParams;
use loom_core::loom_model::layer::{ConvSpec, FcSpec, PoolSpec};
use loom_core::loom_model::network::NetworkBuilder;
use loom_core::loom_model::synthetic::{synthetic_activations, ValueDistribution};
use loom_core::loom_model::tensor::{Shape3, Tensor3};
use loom_core::loom_model::Precision;
use loom_core::loom_precision::profiler::{profile_network, ProfilerConfig};
use loom_core::loom_precision::{table1, AccuracyTarget};
use loom_core::report::TextTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Table 1 — Activation and weight precision profiles (published, embedded)\n");
    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        println!("== {target} top-1 accuracy ==");
        let mut table = TextTable::new(vec![
            "Network",
            "Conv act per layer",
            "Conv W",
            "FC W per layer",
        ]);
        for profile in table1::all_profiles(target) {
            let acts: Vec<String> = profile
                .conv_activations
                .iter()
                .map(|p| p.bits().to_string())
                .collect();
            let fcs: Vec<String> = profile
                .fc_weights
                .iter()
                .map(|p| p.bits().to_string())
                .collect();
            table.row(vec![
                profile.network.clone(),
                acts.join("-"),
                profile.conv_weight.bits().to_string(),
                if fcs.is_empty() {
                    "n/a".to_string()
                } else {
                    fcs.join("-")
                },
            ]);
        }
        println!("{}", table.render());
    }

    println!(
        "Profiling method demonstration (output-fidelity proxy on a runnable synthetic network):"
    );
    let net = NetworkBuilder::new("demo")
        .conv("conv1", ConvSpec::simple(3, 16, 16, 12, 3))
        .max_pool("pool1", PoolSpec::new(12, 14, 14, 2, 2))
        .conv("conv2", ConvSpec::simple(12, 7, 7, 24, 3))
        .fully_connected("fc1", FcSpec::new(24 * 5 * 5, 10))
        .build()
        .expect("demo network is valid");
    let params = NetworkParams::synthetic(&net, &[Precision::new(9).unwrap()], 7);
    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Tensor3> = (0..2)
        .map(|_| {
            Tensor3::from_vec(
                Shape3::new(3, 16, 16),
                synthetic_activations(
                    &mut rng,
                    3 * 16 * 16,
                    Precision::new(8).unwrap(),
                    ValueDistribution::activations(),
                ),
            )
            .expect("shape matches")
        })
        .collect();
    for (label, config) in [
        ("100%", ProfilerConfig::lossless()),
        ("99%", ProfilerConfig::relaxed()),
    ] {
        let derived = profile_network(&net, &params, &inputs, config);
        let acts: Vec<String> = derived
            .activation_precisions
            .iter()
            .map(|p| p.bits().to_string())
            .collect();
        println!(
            "  {label}: act precisions {} | weight precision {} | fidelity {:.4}",
            acts.join("-"),
            derived.weight_precision.bits(),
            derived.combined_fidelity
        );
    }
}
