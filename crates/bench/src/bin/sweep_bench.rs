//! Sweep benchmark: times the full (network × accelerator) simulation matrix
//! serially and in parallel, checks the two produce bit-identical results,
//! and emits a machine-readable `BENCH_sweep.json` with the wall-clocks and
//! per-accelerator cycle totals. CI runs this as a smoke step.
//!
//! Accepts `--threads N` / `LOOM_THREADS` (parallel worker count) and
//! `--filter <network|accelerator>` (restrict the matrix).

use loom_core::experiment::ExperimentSettings;
use loom_core::export::{sweep_bench_to_json, SweepBenchReport};
use loom_core::loom_model::network::Network;
use loom_core::loom_model::zoo;
use loom_core::loom_sim::counts::NetworkSim;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::sweep::{SweepOptions, SweepRunner};
use std::sync::Arc;
use std::time::Instant;

/// Runs every (network, accelerator) pair on a fresh runner and returns the
/// sims in job order plus the elapsed wall-clock seconds.
fn run_matrix(
    threads: usize,
    networks: &[Network],
    kinds: &[AcceleratorKind],
    settings: &ExperimentSettings,
) -> (Vec<Arc<NetworkSim>>, f64) {
    let runner = SweepRunner::new(threads);
    let jobs: Vec<(usize, AcceleratorKind)> = (0..networks.len())
        .flat_map(|ni| kinds.iter().map(move |&k| (ni, k)))
        .collect();
    let started = Instant::now();
    let sims = runner.parallel_map(&jobs, |&(ni, kind)| {
        runner.simulate(&networks[ni], kind, settings)
    });
    (sims, started.elapsed().as_secs_f64())
}

fn main() {
    let options = SweepOptions::from_env();
    let zoo_networks = zoo::all();
    let all_kinds = AcceleratorKind::all();
    let names = zoo_networks
        .iter()
        .map(|n| n.name().to_string())
        .chain(all_kinds.iter().map(|k| k.to_string()));
    if options.matches_nothing_in(names) {
        eprintln!(
            "warning: --filter {:?} matches no network or accelerator; running the full matrix",
            options.filter.as_deref().unwrap_or("")
        );
    }
    let (networks, kinds) = options.apply(zoo_networks, all_kinds);
    let settings = ExperimentSettings::default();
    println!(
        "Sweep benchmark: {} networks x {} accelerators, serial vs {} threads",
        networks.len(),
        kinds.len(),
        options.threads
    );

    let (serial_sims, serial_seconds) = run_matrix(1, &networks, &kinds, &settings);
    let (parallel_sims, parallel_seconds) =
        run_matrix(options.threads, &networks, &kinds, &settings);

    let results_identical = serial_sims
        .iter()
        .zip(parallel_sims.iter())
        .all(|(s, p)| s.as_ref() == p.as_ref());

    let per_accelerator_cycles: Vec<(String, u64)> = kinds
        .iter()
        .enumerate()
        .map(|(ki, kind)| {
            let total: u64 = (0..networks.len())
                .map(|ni| serial_sims[ni * kinds.len() + ki].total_cycles())
                .sum();
            (kind.to_string(), total)
        })
        .collect();

    let report = SweepBenchReport {
        threads: options.threads,
        jobs: networks.len() * kinds.len(),
        serial_seconds,
        parallel_seconds,
        results_identical,
        per_accelerator_cycles,
    };

    println!(
        "  serial   : {:.3}s\n  parallel : {:.3}s ({} threads) -> {:.2}x\n  identical: {}",
        report.serial_seconds,
        report.parallel_seconds,
        report.threads,
        report.speedup(),
        report.results_identical
    );
    for (name, cycles) in &report.per_accelerator_cycles {
        println!("  {name:<12} {cycles} total cycles");
    }

    let json = sweep_bench_to_json(&report);
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => println!("Wrote BENCH_sweep.json"),
        Err(e) => eprintln!("Could not write BENCH_sweep.json: {e}"),
    }

    if !results_identical {
        eprintln!("ERROR: parallel sweep results diverged from the serial sweep");
        std::process::exit(1);
    }
}
