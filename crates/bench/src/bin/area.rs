//! Reproduces the §4.4 area comparison: post-layout area of the Loom variants
//! relative to DPNN at the 128 MAC-equivalent configuration.

use loom_core::loom_energy::area::{area, core_area_ratio};
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::{EquivalentConfig, LoomVariant};
use loom_core::report::TextTable;

fn main() {
    println!("Section 4.4 — Area overhead at the 128 MAC-equivalent configuration\n");
    let cfg = EquivalentConfig::BASELINE_128;
    let mut table = TextTable::new(vec![
        "Design",
        "Core area (mm2)",
        "Relative to DPNN",
        "Paper",
    ]);
    let dpnn = area(AcceleratorKind::Dpnn, cfg, 0, 0);
    table.row(vec![
        "DPNN".to_string(),
        format!("{:.2}", dpnn.core_mm2()),
        "1.00".to_string(),
        "1.00".to_string(),
    ]);
    for (variant, paper) in [
        (LoomVariant::Lm1b, 1.34),
        (LoomVariant::Lm2b, 1.25),
        (LoomVariant::Lm4b, 1.16),
    ] {
        let a = area(AcceleratorKind::Loom(variant), cfg, 0, 0);
        table.row(vec![
            variant.to_string(),
            format!("{:.2}", a.core_mm2()),
            format!("{:.2}", core_area_ratio(variant, cfg)),
            format!("{paper:.2}"),
        ]);
    }
    println!("{}", table.render());
}
