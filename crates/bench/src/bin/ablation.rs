//! Ablation study of Loom's design choices (not a table in the paper, but the
//! knobs its architecture section motivates): runtime dynamic activation
//! precision, SIP cascading for few-output FCLs, per-group weight precisions,
//! and the bits-per-cycle variant. Each row removes or changes exactly one
//! mechanism and reports the all-layer speedup over DPNN.
//!
//! Accepts `--threads N` / `LOOM_THREADS` (worker threads for the sweep) and
//! `--filter <network>` (restrict the geomean to matching networks instead of
//! running the whole zoo).

use loom_core::experiment::{ExperimentSettings, WeightGranularity};
use loom_core::loom_model::layer::FcSpec;
use loom_core::loom_model::network::Network;
use loom_core::loom_model::zoo;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::LayerPrecisionSpec;
use loom_core::loom_sim::config::EquivalentConfig;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::loom::fc_schedule;
use loom_core::loom_sim::{dpnn, LoomVariant};
use loom_core::report::TextTable;
use loom_core::sweep::{SweepOptions, SweepRunner};

fn all_layer_speedup(
    runner: &SweepRunner,
    networks: &[Network],
    settings: &ExperimentSettings,
    variant: LoomVariant,
) -> f64 {
    let speedups = runner.parallel_map(networks, |net| {
        let dpnn_run = runner.simulate(net, AcceleratorKind::Dpnn, settings);
        let lm_run = runner.simulate(net, AcceleratorKind::Loom(variant), settings);
        lm_run.speedup_vs(&dpnn_run)
    });
    loom_core::loom_sim::counts::geomean(&speedups)
}

fn main() {
    let options = SweepOptions::from_env();
    let runner = SweepRunner::from_options(&options);
    if options.matches_nothing_in(zoo::all().iter().map(|n| n.name().to_string())) {
        eprintln!(
            "warning: --filter {:?} matches no network (ablation filters networks only); running the full zoo",
            options.filter.as_deref().unwrap_or("")
        );
    }
    let (networks, _) = options.apply(zoo::all(), vec![]);
    let scope: Vec<String> = networks.iter().map(|n| n.name().to_string()).collect();
    println!(
        "Ablation — geomean all-layer speedup over DPNN (config 128, 100% profiles)\n\
         ({} worker threads, networks: {})\n",
        runner.threads(),
        scope.join(", ")
    );
    let mut table = TextTable::new(vec!["Configuration", "Speedup"]);

    let base = ExperimentSettings::default();
    table.row(vec![
        "Loom 1-bit (paper default: dynamic activations, per-layer weights)".to_string(),
        format!(
            "{:.2}",
            all_layer_speedup(&runner, &networks, &base, LoomVariant::Lm1b)
        ),
    ]);

    let static_only = ExperimentSettings {
        dynamic_activation: false,
        ..base
    };
    table.row(vec![
        "  - without runtime activation precision detection".to_string(),
        format!(
            "{:.2}",
            all_layer_speedup(&runner, &networks, &static_only, LoomVariant::Lm1b)
        ),
    ]);

    let per_group = ExperimentSettings {
        weights: WeightGranularity::PerGroupEffective,
        ..base
    };
    table.row(vec![
        "  + per-group weight precisions (Table 3)".to_string(),
        format!(
            "{:.2}",
            all_layer_speedup(&runner, &networks, &per_group, LoomVariant::Lm1b)
        ),
    ]);

    for variant in [LoomVariant::Lm2b, LoomVariant::Lm4b] {
        table.row(vec![
            format!("  {variant} instead of 1-bit"),
            format!(
                "{:.2}",
                all_layer_speedup(&runner, &networks, &base, variant)
            ),
        ]);
    }
    println!("{}", table.render());

    // Cascading ablation on the few-output FCL it was designed for.
    println!("SIP cascading on GoogLeNet's 1024->1000 classifier (Pw = 7):");
    let cfg = EquivalentConfig::BASELINE_128;
    let spec = FcSpec::new(1024, 1000);
    let prec = LayerPrecisionSpec::static_profile(Precision::FULL, Precision::new(7).unwrap());
    let baseline = dpnn::fc_cycles(&cfg.dpnn(), &spec);
    for (label, cascading) in [("with cascading", true), ("without cascading", false)] {
        let r = fc_schedule(&cfg.loom(LoomVariant::Lm1b), &spec, &prec, cascading);
        println!(
            "  {label:<18}: {} cycles -> {:.2}x vs DPNN ({} cycles), SIP occupancy {:.0}%",
            r.cycles,
            baseline as f64 / r.cycles as f64,
            baseline,
            r.utilization * 100.0
        );
    }
}
