//! Ablation study of Loom's design choices (not a table in the paper, but the
//! knobs its architecture section motivates): runtime dynamic activation
//! precision, SIP cascading for few-output FCLs, per-group weight precisions,
//! and the bits-per-cycle variant. Each row removes or changes exactly one
//! mechanism and reports the all-layer speedup over DPNN.

use loom_core::experiment::{build_assignment, ExperimentSettings, WeightGranularity};
use loom_core::loom_model::layer::FcSpec;
use loom_core::loom_model::zoo;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::LayerPrecisionSpec;
use loom_core::loom_sim::config::EquivalentConfig;
use loom_core::loom_sim::engine::{AcceleratorKind, Simulator};
use loom_core::loom_sim::loom::fc_schedule;
use loom_core::loom_sim::{dpnn, LoomVariant};
use loom_core::report::TextTable;

fn all_layer_speedup(settings: &ExperimentSettings, variant: LoomVariant) -> f64 {
    let sim = Simulator::new(settings.config);
    let mut speedups = Vec::new();
    for net in zoo::all() {
        let assignment = build_assignment(&net, settings);
        let dpnn_run = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let lm_run = sim.simulate(AcceleratorKind::Loom(variant), &net, &assignment);
        speedups.push(lm_run.speedup_vs(&dpnn_run));
    }
    loom_core::loom_sim::counts::geomean(&speedups)
}

fn main() {
    println!("Ablation — geomean all-layer speedup over DPNN (config 128, 100% profiles)\n");
    let mut table = TextTable::new(vec!["Configuration", "Speedup"]);

    let base = ExperimentSettings::default();
    table.row(vec![
        "Loom 1-bit (paper default: dynamic activations, per-layer weights)".to_string(),
        format!("{:.2}", all_layer_speedup(&base, LoomVariant::Lm1b)),
    ]);

    let static_only = ExperimentSettings {
        dynamic_activation: false,
        ..base
    };
    table.row(vec![
        "  - without runtime activation precision detection".to_string(),
        format!("{:.2}", all_layer_speedup(&static_only, LoomVariant::Lm1b)),
    ]);

    let per_group = ExperimentSettings {
        weights: WeightGranularity::PerGroupEffective,
        ..base
    };
    table.row(vec![
        "  + per-group weight precisions (Table 3)".to_string(),
        format!("{:.2}", all_layer_speedup(&per_group, LoomVariant::Lm1b)),
    ]);

    for variant in [LoomVariant::Lm2b, LoomVariant::Lm4b] {
        table.row(vec![
            format!("  {variant} instead of 1-bit"),
            format!("{:.2}", all_layer_speedup(&base, variant)),
        ]);
    }
    println!("{}", table.render());

    // Cascading ablation on the few-output FCL it was designed for.
    println!("SIP cascading on GoogLeNet's 1024->1000 classifier (Pw = 7):");
    let cfg = EquivalentConfig::BASELINE_128;
    let spec = FcSpec::new(1024, 1000);
    let prec = LayerPrecisionSpec::static_profile(Precision::FULL, Precision::new(7).unwrap());
    let baseline = dpnn::fc_cycles(&cfg.dpnn(), &spec);
    for (label, cascading) in [("with cascading", true), ("without cascading", false)] {
        let r = fc_schedule(&cfg.loom(LoomVariant::Lm1b), &spec, &prec, cascading);
        println!(
            "  {label:<18}: {} cycles -> {:.2}x vs DPNN ({} cycles), SIP occupancy {:.0}%",
            r.cycles,
            baseline as f64 / r.cycles as f64,
            baseline,
            r.utilization * 100.0
        );
    }
}
