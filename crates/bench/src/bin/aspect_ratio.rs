//! The SIP-grid aspect-ratio study the paper leaves as future work (§3.2:
//! "Alternatively, LM could process 32 filters over 64 windows, however, we
//! leave this investigation for future work").
//!
//! All arrangements below keep the same 2048 SIPs (the "128" configuration) but
//! trade filter rows against window columns. Fewer rows reduce the
//! under-utilisation of layers with few filters; fewer columns reduce the
//! under-utilisation of layers with few windows (late, small feature maps) and
//! shrink the dynamic-precision group, increasing its benefit — the study shows
//! where the paper's 128×16 choice sits.
//!
//! Each arrangement is just a custom [`Accelerator`] instance
//! (`Loom::with_geometry`) run through the same trait machinery as the
//! built-in backends.

use loom_core::experiment::{build_assignment, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_sim::accelerator::{Accelerator, Loom};
use loom_core::loom_sim::config::{LoomGeometry, LoomVariant};
use loom_core::loom_sim::counts::geomean;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::Simulator;
use loom_core::report::TextTable;

fn main() {
    let settings = ExperimentSettings::default();
    let simulator = Simulator::baseline_128();
    let arrangements = [(512usize, 4usize), (256, 8), (128, 16), (64, 32), (32, 64)];

    println!(
        "SIP grid aspect-ratio study — 2048 SIPs, 100% profiles, geomean over the six networks\n"
    );
    let mut table = TextTable::new(vec![
        "Filters x Windows",
        "Conv speedup",
        "FC speedup",
        "All speedup",
    ]);
    for (rows, cols) in arrangements {
        let geometry = LoomGeometry {
            filter_rows: rows,
            window_columns: cols,
            sip_lanes: 16,
            act_bits_per_cycle: 1,
        };
        let custom = Loom::with_geometry(LoomVariant::Lm1b, geometry);
        let mut conv = Vec::new();
        let mut fc = Vec::new();
        let mut all = Vec::new();
        for net in zoo::all() {
            let assignment = build_assignment(&net, &settings);
            let dpnn = simulator.simulate(AcceleratorKind::Dpnn, &net, &assignment);
            let lm = custom.simulate_network(&net, &assignment);
            conv.push(lm.conv_speedup_vs(&dpnn));
            if dpnn.fc_cycles() > 0 {
                fc.push(lm.fc_speedup_vs(&dpnn));
            }
            all.push(lm.speedup_vs(&dpnn));
        }
        table.row(vec![
            format!("{rows} x {cols}"),
            format!("{:.2}", geomean(&conv)),
            format!("{:.2}", geomean(&fc)),
            format!("{:.2}", geomean(&all)),
        ]);
    }
    println!("{}", table.render());
    println!("The paper's 128x16 arrangement balances filter- and window-side under-utilisation;");
    println!("wider-window arrangements help networks whose late layers have few filters, at the");
    println!("cost of layers with small feature maps.");
}
