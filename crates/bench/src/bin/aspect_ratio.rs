//! The SIP-grid aspect-ratio study the paper leaves as future work (§3.2:
//! "Alternatively, LM could process 32 filters over 64 windows, however, we
//! leave this investigation for future work").
//!
//! All arrangements below keep the same 2048 SIPs (the "128" configuration) but
//! trade filter rows against window columns. Fewer rows reduce the
//! under-utilisation of layers with few filters; fewer columns reduce the
//! under-utilisation of layers with few windows (late, small feature maps) and
//! shrink the dynamic-precision group, increasing its benefit — the study shows
//! where the paper's 128×16 choice sits.

use loom_core::experiment::{build_assignment, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::counts::geomean;
use loom_core::loom_sim::engine::{AcceleratorKind, Simulator};
use loom_core::loom_sim::loom::{conv_schedule, fc_schedule};
use loom_core::loom_sim::LayerClass;
use loom_core::report::TextTable;

fn main() {
    let settings = ExperimentSettings::default();
    let simulator = Simulator::baseline_128();
    let arrangements = [(512usize, 4usize), (256, 8), (128, 16), (64, 32), (32, 64)];

    println!(
        "SIP grid aspect-ratio study — 2048 SIPs, 100% profiles, geomean over the six networks\n"
    );
    let mut table = TextTable::new(vec![
        "Filters x Windows",
        "Conv speedup",
        "FC speedup",
        "All speedup",
    ]);
    for (rows, cols) in arrangements {
        let geometry = LoomGeometry {
            filter_rows: rows,
            window_columns: cols,
            sip_lanes: 16,
            act_bits_per_cycle: 1,
        };
        let mut conv = Vec::new();
        let mut fc = Vec::new();
        let mut all = Vec::new();
        for net in zoo::all() {
            let assignment = build_assignment(&net, &settings);
            let dpnn = simulator.simulate(AcceleratorKind::Dpnn, &net, &assignment);
            // Re-simulate Loom layer by layer with the custom geometry.
            let mut conv_cycles = 0u64;
            let mut fc_cycles_total = 0u64;
            let mut compute_idx = 0usize;
            for layer in net.layers() {
                if !layer.kind.is_compute() {
                    continue;
                }
                let spec = assignment.for_layer(compute_idx);
                compute_idx += 1;
                match &layer.kind {
                    loom_core::loom_model::LayerKind::Conv(c) => {
                        conv_cycles += conv_schedule(&geometry, c, &spec).cycles;
                    }
                    loom_core::loom_model::LayerKind::FullyConnected(f) => {
                        fc_cycles_total += fc_schedule(&geometry, f, &spec, true).cycles;
                    }
                    loom_core::loom_model::LayerKind::MaxPool(_) => {}
                }
            }
            let dpnn_conv = dpnn
                .layers
                .iter()
                .filter(|l| l.class == LayerClass::Conv)
                .map(|l| l.cycles)
                .sum::<u64>();
            let dpnn_fc = dpnn
                .layers
                .iter()
                .filter(|l| l.class == LayerClass::FullyConnected)
                .map(|l| l.cycles)
                .sum::<u64>();
            conv.push(dpnn_conv as f64 / conv_cycles.max(1) as f64);
            if dpnn_fc > 0 {
                fc.push(dpnn_fc as f64 / fc_cycles_total.max(1) as f64);
            }
            all.push((dpnn_conv + dpnn_fc) as f64 / (conv_cycles + fc_cycles_total).max(1) as f64);
        }
        table.row(vec![
            format!("{rows} x {cols}"),
            format!("{:.2}", geomean(&conv)),
            format!("{:.2}", geomean(&fc)),
            format!("{:.2}", geomean(&all)),
        ]);
    }
    println!("{}", table.render());
    println!("The paper's 128x16 arrangement balances filter- and window-side under-utilisation;");
    println!("wider-window arrangements help networks whose late layers have few filters, at the");
    println!("cost of layers with small feature maps.");
}
