//! Reproduces Table 2: relative execution time speedup and energy efficiency
//! of Stripes and the Loom variants over DPNN, for fully-connected and
//! convolutional layers, under the 100% and 99% accuracy profiles.
//!
//! Accepts `--threads N` / `LOOM_THREADS` to fan the sweep across workers.

use loom_core::loom_precision::AccuracyTarget;
use loom_core::sweep::{SweepOptions, SweepRunner};
use loom_core::tables::table2_with;

fn main() {
    let runner = SweepRunner::from_options(&SweepOptions::from_env());
    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        println!("{}", table2_with(&runner, target).render());
    }
}
