//! Reproduces Table 2: relative execution time speedup and energy efficiency
//! of Stripes and the Loom variants over DPNN, for fully-connected and
//! convolutional layers, under the 100% and 99% accuracy profiles.

use loom_core::loom_precision::AccuracyTarget;
use loom_core::tables::table2;

fn main() {
    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        println!("{}", table2(target).render());
    }
}
