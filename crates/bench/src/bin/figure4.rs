//! Reproduces Figure 4: per-network performance (a) and energy efficiency (b)
//! of Stripes, DStripes and the Loom variants relative to DPNN for all layers
//! under the 100% accuracy profile.

use loom_core::tables::figure4;

fn main() {
    println!("{}", figure4().render());
}
