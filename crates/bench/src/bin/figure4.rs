//! Reproduces Figure 4: per-network performance (a) and energy efficiency (b)
//! of Stripes, DStripes and the Loom variants relative to DPNN for all layers
//! under the 100% accuracy profile.
//!
//! Accepts `--threads N` / `LOOM_THREADS` to fan the sweep across workers.

use loom_core::sweep::{SweepOptions, SweepRunner};
use loom_core::tables::figure4_with;

fn main() {
    let runner = SweepRunner::from_options(&SweepOptions::from_env());
    println!("{}", figure4_with(&runner).render());
}
