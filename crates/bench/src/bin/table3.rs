//! Reproduces Table 3: average effective per-layer weight precisions for
//! groups of 16 weights — the published values plus a demonstration of the
//! per-group detector on synthetic weights calibrated to each network's
//! nominal profile.

use loom_core::loom_model::synthetic::{synthetic_weights, ValueDistribution};
use loom_core::loom_model::zoo;
use loom_core::loom_precision::group::layer_effective_weight_bits;
use loom_core::loom_precision::{table1, table3, AccuracyTarget};
use loom_core::report::TextTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Table 3 — Average effective per-layer weight precisions (groups of 16)\n");
    let mut table = TextTable::new(vec![
        "Network",
        "Published (paper)",
        "Detected on synthetic weights",
    ]);
    for net in zoo::all() {
        let published = table3::effective_conv_weight_bits(net.name()).expect("known network");
        let nominal = table1::profile(net.name(), AccuracyTarget::Lossless)
            .expect("known network")
            .conv_weight;
        let mut rng = StdRng::seed_from_u64(42);
        let detected: Vec<String> = net
            .conv_layers()
            .map(|(_, spec)| {
                let count = (spec.total_weights() as usize).min(64 * 1024);
                let w = synthetic_weights(&mut rng, count, nominal, ValueDistribution::weights());
                format!("{:.2}", layer_effective_weight_bits(&w))
            })
            .collect();
        let published_s: Vec<String> = published.iter().map(|b| format!("{b:.2}")).collect();
        table.row(vec![
            net.name().to_string(),
            published_s.join("-"),
            detected.join("-"),
        ]);
    }
    println!("{}", table.render());
}
