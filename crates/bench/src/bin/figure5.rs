//! Reproduces Figure 5: scaling of Loom and DStripes relative to an
//! equally-provisioned DPNN from 32 to 512 equivalent MACs/cycle, with a
//! single-channel LPDDR4-4267 off-chip memory, plus the §4.5 activation-memory
//! sizing claims.
//!
//! Accepts `--threads N` / `LOOM_THREADS` to fan the design points across
//! workers.

use loom_core::loom_model::zoo;
use loom_core::report::TextTable;
use loom_core::scaling::{am_sizing, figure5_with};
use loom_core::sweep::{SweepOptions, SweepRunner};

fn main() {
    let runner = SweepRunner::from_options(&SweepOptions::from_env());
    println!("{}", figure5_with(&runner).render());
    println!("Activation-memory sizing (§4.5):");
    let mut table = TextTable::new(vec!["Network", "DPNN AM (16b)", "Loom AM (packed)"]);
    for net in zoo::all() {
        let s = am_sizing(&net);
        table.row(vec![
            net.name().to_string(),
            format!("{:.2} MB", s.dpnn_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2} MB", s.loom_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!("{}", table.render());
}
