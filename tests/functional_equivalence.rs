//! Cross-crate functional-equivalence tests: the bit-serial machinery must be
//! bit-exact against the straightforward integer reference implementations,
//! for arbitrary values and precisions (property-based).

use loom_core::loom_mem::packing::PackedGroup;
use loom_core::loom_model::fixed::{required_precision, signed_range, Precision};
use loom_core::loom_model::layer::{ConvSpec, FcSpec};
use loom_core::loom_model::reference::{conv_forward, fc_forward};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{reference_inner_product, serial_inner_product, FunctionalLoom};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SIP's bit-serial inner product equals the integer inner product for
    /// any signed operands of any precision combination.
    #[test]
    fn sip_equals_reference_for_any_precisions(
        pw in 1u8..=16,
        pa in 1u8..=16,
        lanes in 1usize..=16,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let (wmin, wmax) = signed_range(Precision::new(pw).unwrap());
        let (amin, amax) = signed_range(Precision::new(pa).unwrap());
        let weights: Vec<i32> = (0..lanes).map(|_| rng.random_range(wmin..=wmax)).collect();
        let activations: Vec<i32> = (0..lanes).map(|_| rng.random_range(amin..=amax)).collect();
        let serial = serial_inner_product(
            &weights,
            &activations,
            Precision::new(pw).unwrap(),
            Precision::new(pa).unwrap(),
            true,
            true,
        );
        prop_assert_eq!(serial, reference_inner_product(&weights, &activations));
    }

    /// Bit-interleaved packing round-trips exactly at the precision detected
    /// from the values themselves.
    #[test]
    fn packing_roundtrips(values in prop::collection::vec(-32768i32..=32767, 1..200)) {
        let precision = required_precision(&values);
        let packed = PackedGroup::pack(&values, precision).unwrap();
        prop_assert_eq!(packed.unpack_signed(), values.clone());
        prop_assert_eq!(packed.storage_bits(), values.len() as u64 * u64::from(precision.bits()));
    }

    /// The functional Loom engine computes fully-connected layers bit-exactly.
    #[test]
    fn functional_fc_matches_reference(
        inputs in 1usize..40,
        outputs in 1usize..20,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = FcSpec::new(inputs, outputs);
        let input: Vec<i32> = (0..inputs).map(|_| rng.random_range(-512i32..=511)).collect();
        let weights: Vec<i32> = (0..inputs * outputs).map(|_| rng.random_range(-128i32..=127)).collect();
        let geometry = LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 4,
            act_bits_per_cycle: 1,
        };
        let run = FunctionalLoom::new(geometry).run_fc(&spec, &input, &weights, Precision::new(8).unwrap());
        prop_assert_eq!(run.outputs, fc_forward(&spec, &input, &weights));
    }
}

/// The functional Loom engine computes a convolution bit-exactly, with and
/// without dynamic precision detection, for a deterministic set of shapes.
#[test]
fn functional_conv_matches_reference_across_shapes() {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let shapes = [
        (1usize, 5usize, 5usize, 3usize, 1usize, 1usize, 0usize),
        (3, 8, 8, 6, 3, 1, 1),
        (4, 7, 9, 5, 3, 2, 1),
        (2, 6, 6, 9, 2, 1, 0),
    ];
    let geometry = LoomGeometry {
        filter_rows: 4,
        window_columns: 3,
        sip_lanes: 5,
        act_bits_per_cycle: 1,
    };
    let mut rng = StdRng::seed_from_u64(99);
    for (c, h, w, k, kernel, stride, padding) in shapes {
        let spec = ConvSpec {
            in_channels: c,
            in_height: h,
            in_width: w,
            filters: k,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
            groups: 1,
        };
        spec.validate().unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            (0..spec.input_shape().len())
                .map(|_| rng.random_range(0i32..=255))
                .collect(),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            (0..spec.weight_shape().len())
                .map(|_| rng.random_range(-64i32..=63))
                .collect(),
        )
        .unwrap();
        let reference = conv_forward(&spec, &input, &weights);
        let pa = Precision::new(8).unwrap();
        let pw = Precision::new(7).unwrap();
        for dynamic in [true, false] {
            let engine = if dynamic {
                FunctionalLoom::new(geometry)
            } else {
                FunctionalLoom::new(geometry).without_dynamic_precision()
            };
            let run = engine.run_conv(&spec, &input, &weights, pa, pw);
            assert_eq!(run.outputs, reference, "shape {spec:?} dynamic={dynamic}");
        }
    }
}
