//! Cross-crate functional-equivalence tests: the bit-serial machinery must be
//! bit-exact against the straightforward integer reference implementations,
//! for arbitrary values and precisions (property-based).

use loom_core::loom_mem::packing::PackedGroup;
use loom_core::loom_model::fixed::{required_precision, signed_range, Precision};
use loom_core::loom_model::layer::{ConvSpec, FcSpec};
use loom_core::loom_model::reference::{conv_forward, fc_forward};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{
    packed_inner_product_slices, reference_inner_product, serial_inner_product,
    wide_inner_product_slices, FunctionalLoom, SipKernel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SIP's bit-serial inner product equals the integer inner product for
    /// any signed operands of any precision combination.
    #[test]
    fn sip_equals_reference_for_any_precisions(
        pw in 1u8..=16,
        pa in 1u8..=16,
        lanes in 1usize..=16,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let (wmin, wmax) = signed_range(Precision::new(pw).unwrap());
        let (amin, amax) = signed_range(Precision::new(pa).unwrap());
        let weights: Vec<i32> = (0..lanes).map(|_| rng.random_range(wmin..=wmax)).collect();
        let activations: Vec<i32> = (0..lanes).map(|_| rng.random_range(amin..=amax)).collect();
        let serial = serial_inner_product(
            &weights,
            &activations,
            Precision::new(pw).unwrap(),
            Precision::new(pa).unwrap(),
            true,
            true,
        );
        prop_assert_eq!(serial, reference_inner_product(&weights, &activations));
    }

    /// The packed AND+popcount datapath is bit-identical to the bit-serial SIP
    /// model (and both equal the integer reference) across random lane counts
    /// up to a full 64-lane plane word, every precision combination, and all
    /// four signedness combinations.
    #[test]
    fn packed_equals_serial_equals_reference(
        pw in 1u8..=16,
        pa in 1u8..=16,
        lanes in 1usize..=64,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let pw_p = Precision::new(pw).unwrap();
        let pa_p = Precision::new(pa).unwrap();
        for weights_signed in [false, true] {
            for activations_signed in [false, true] {
                let (wmin, wmax) = if weights_signed {
                    signed_range(pw_p)
                } else {
                    (0, ((1u32 << pw) - 1) as i32)
                };
                let (amin, amax) = if activations_signed {
                    signed_range(pa_p)
                } else {
                    (0, ((1u32 << pa) - 1) as i32)
                };
                let weights: Vec<i32> = (0..lanes).map(|_| rng.random_range(wmin..=wmax)).collect();
                let activations: Vec<i32> =
                    (0..lanes).map(|_| rng.random_range(amin..=amax)).collect();
                let serial = serial_inner_product(
                    &weights, &activations, pw_p, pa_p, weights_signed, activations_signed,
                );
                let packed = packed_inner_product_slices(
                    &weights, &activations, pw_p, pa_p, weights_signed, activations_signed,
                );
                prop_assert!(
                    packed == serial,
                    "packed {} != serial {} (ws={} as={} pw={} pa={})",
                    packed, serial, weights_signed, activations_signed, pw, pa
                );
                prop_assert_eq!(serial, reference_inner_product(&weights, &activations));
            }
        }
    }

    /// The 256-lane SIMD-wide datapath is bit-identical to the bit-serial SIP
    /// model (and both equal the integer reference) across the full wide lane
    /// range — 65–256 lanes always spans multiple plane words, and the
    /// modulus guarantees ragged tails (`lanes % 64 != 0`) are hit
    /// constantly — for every precision combination and all four signedness
    /// combinations.
    #[test]
    fn wide_equals_serial_equals_reference(
        pw in 1u8..=16,
        pa in 1u8..=16,
        lanes in 65usize..=256,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let pw_p = Precision::new(pw).unwrap();
        let pa_p = Precision::new(pa).unwrap();
        for weights_signed in [false, true] {
            for activations_signed in [false, true] {
                let (wmin, wmax) = if weights_signed {
                    signed_range(pw_p)
                } else {
                    (0, ((1u32 << pw) - 1) as i32)
                };
                let (amin, amax) = if activations_signed {
                    signed_range(pa_p)
                } else {
                    (0, ((1u32 << pa) - 1) as i32)
                };
                let weights: Vec<i32> = (0..lanes).map(|_| rng.random_range(wmin..=wmax)).collect();
                let activations: Vec<i32> =
                    (0..lanes).map(|_| rng.random_range(amin..=amax)).collect();
                let serial = serial_inner_product(
                    &weights, &activations, pw_p, pa_p, weights_signed, activations_signed,
                );
                let wide = wide_inner_product_slices(
                    &weights, &activations, pw_p, pa_p, weights_signed, activations_signed,
                );
                prop_assert!(
                    wide == serial,
                    "wide {} != serial {} (ws={} as={} pw={} pa={} lanes={})",
                    wide, serial, weights_signed, activations_signed, pw, pa, lanes
                );
                prop_assert_eq!(serial, reference_inner_product(&weights, &activations));
            }
        }
    }

    /// On 1–64 lanes the wide kernel also agrees with the 64-lane packed
    /// block (the two datapaths tile the same values differently).
    #[test]
    fn wide_equals_packed_on_narrow_lanes(
        pw in 1u8..=16,
        pa in 1u8..=16,
        lanes in 1usize..=64,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let pw_p = Precision::new(pw).unwrap();
        let pa_p = Precision::new(pa).unwrap();
        let (wmin, wmax) = signed_range(pw_p);
        let (amin, amax) = signed_range(pa_p);
        let weights: Vec<i32> = (0..lanes).map(|_| rng.random_range(wmin..=wmax)).collect();
        let activations: Vec<i32> = (0..lanes).map(|_| rng.random_range(amin..=amax)).collect();
        prop_assert_eq!(
            wide_inner_product_slices(&weights, &activations, pw_p, pa_p, true, true),
            packed_inner_product_slices(&weights, &activations, pw_p, pa_p, true, true)
        );
    }

    /// Thread-count invariance at the new task granularity: a convolution's
    /// window groups and a fully-connected layer's output-row groups must
    /// merge bit-identically for any worker count.
    #[test]
    fn layer_results_are_thread_invariant(
        threads in 2usize..=6,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let geometry = LoomGeometry {
            filter_rows: 8,
            window_columns: 3,
            sip_lanes: 5,
            act_bits_per_cycle: 1,
        };
        let spec = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(3, 7, 7, 5, 3)
        };
        let input = Tensor3::from_vec(
            spec.input_shape(),
            (0..spec.input_shape().len()).map(|_| rng.random_range(0i32..=255)).collect(),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            (0..spec.weight_shape().len()).map(|_| rng.random_range(-64i32..=63)).collect(),
        )
        .unwrap();
        let pa = Precision::new(8).unwrap();
        let pw = Precision::new(7).unwrap();
        let serial = FunctionalLoom::new(geometry).run_conv(&spec, &input, &weights, pa, pw);
        let parallel = FunctionalLoom::new(geometry)
            .with_threads(threads)
            .run_conv(&spec, &input, &weights, pa, pw);
        prop_assert_eq!(&serial, &parallel);

        let fc = FcSpec::new(100, 150);
        let fc_input: Vec<i32> = (0..100).map(|_| rng.random_range(-256i32..=255)).collect();
        let fc_weights: Vec<i32> = (0..100 * 150).map(|_| rng.random_range(-64i32..=63)).collect();
        let fc_serial = FunctionalLoom::new(geometry).run_fc(&fc, &fc_input, &fc_weights, pw);
        let fc_parallel = FunctionalLoom::new(geometry)
            .with_threads(threads)
            .run_fc(&fc, &fc_input, &fc_weights, pw);
        prop_assert_eq!(&fc_serial, &fc_parallel);
    }

    /// Bit-interleaved packing round-trips exactly at the precision detected
    /// from the values themselves.
    #[test]
    fn packing_roundtrips(values in prop::collection::vec(-32768i32..=32767, 1..200)) {
        let precision = required_precision(&values);
        let packed = PackedGroup::pack(&values, precision).unwrap();
        prop_assert_eq!(packed.unpack_signed(), values.clone());
        prop_assert_eq!(packed.storage_bits(), values.len() as u64 * u64::from(precision.bits()));
    }

    /// The functional Loom engine computes fully-connected layers bit-exactly.
    #[test]
    fn functional_fc_matches_reference(
        inputs in 1usize..40,
        outputs in 1usize..20,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng, RngExt};
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = FcSpec::new(inputs, outputs);
        let input: Vec<i32> = (0..inputs).map(|_| rng.random_range(-512i32..=511)).collect();
        let weights: Vec<i32> = (0..inputs * outputs).map(|_| rng.random_range(-128i32..=127)).collect();
        let geometry = LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 4,
            act_bits_per_cycle: 1,
        };
        let run = FunctionalLoom::new(geometry).run_fc(&spec, &input, &weights, Precision::new(8).unwrap());
        prop_assert_eq!(run.outputs, fc_forward(&spec, &input, &weights));
    }
}

/// The functional Loom engine computes a convolution bit-exactly, with and
/// without dynamic precision detection, for a deterministic set of shapes.
#[test]
fn functional_conv_matches_reference_across_shapes() {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let shapes = [
        (1usize, 5usize, 5usize, 3usize, 1usize, 1usize, 0usize),
        (3, 8, 8, 6, 3, 1, 1),
        (4, 7, 9, 5, 3, 2, 1),
        (2, 6, 6, 9, 2, 1, 0),
    ];
    let geometry = LoomGeometry {
        filter_rows: 4,
        window_columns: 3,
        sip_lanes: 5,
        act_bits_per_cycle: 1,
    };
    let mut rng = StdRng::seed_from_u64(99);
    for (c, h, w, k, kernel, stride, padding) in shapes {
        let spec = ConvSpec {
            in_channels: c,
            in_height: h,
            in_width: w,
            filters: k,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
            groups: 1,
        };
        spec.validate().unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            (0..spec.input_shape().len())
                .map(|_| rng.random_range(0i32..=255))
                .collect(),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            (0..spec.weight_shape().len())
                .map(|_| rng.random_range(-64i32..=63))
                .collect(),
        )
        .unwrap();
        let reference = conv_forward(&spec, &input, &weights);
        let pa = Precision::new(8).unwrap();
        let pw = Precision::new(7).unwrap();
        for dynamic in [true, false] {
            let engine = if dynamic {
                FunctionalLoom::new(geometry)
            } else {
                FunctionalLoom::new(geometry).without_dynamic_precision()
            };
            let run = engine.run_conv(&spec, &input, &weights, pa, pw);
            assert_eq!(run.outputs, reference, "shape {spec:?} dynamic={dynamic}");
            // All three kernels must produce the whole FunctionalRun
            // identically (outputs, cycles, and dynamically reduced groups)
            // — including on this geometry's 5-lane SIP chunks, which
            // straddle the wide datapath's 64-bit plane words.
            for kernel in [SipKernel::Packed, SipKernel::BitSerial] {
                let other = engine
                    .with_kernel(kernel)
                    .run_conv(&spec, &input, &weights, pa, pw);
                assert_eq!(run, other, "shape {spec:?} dynamic={dynamic} {kernel:?}");
            }
        }
    }
}

/// Regression pin for the allocation-free dynamic precision detection: the
/// OR-fold over packed magnitude planes must report exactly the per-chunk
/// reduced-group count (and therefore cycles) that the original
/// materialise-a-`Vec`-then-`required_precision` implementation reported.
/// The expected counts are recomputed here with that original algorithm.
#[test]
fn dynamic_precision_fold_matches_group_values_algorithm() {
    use loom_core::loom_model::fixed::required_unsigned_precision;
    use loom_core::loom_model::im2col::window_patch;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    let spec = ConvSpec::simple(4, 10, 10, 6, 3);
    let geometry = LoomGeometry {
        filter_rows: 8,
        window_columns: 4,
        sip_lanes: 4,
        act_bits_per_cycle: 1,
    };
    let pa = Precision::new(9).unwrap();
    let pw = Precision::new(6).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    // Mostly-small values with occasional spikes, so many chunks detect a
    // reduced precision but not all of them.
    let input = Tensor3::from_vec(
        spec.input_shape(),
        (0..spec.input_shape().len())
            .map(|_| {
                if rng.random_range(0u32..8) == 0 {
                    rng.random_range(0i32..=255)
                } else {
                    rng.random_range(0i32..=15)
                }
            })
            .collect(),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        (0..spec.weight_shape().len())
            .map(|_| rng.random_range(-32i32..=31))
            .collect(),
    )
    .unwrap();

    // The original per-chunk group_values algorithm, reproduced verbatim.
    let cols = geometry.window_columns;
    let lanes = geometry.sip_lanes;
    let windows = spec.windows();
    let out_w = spec.out_width();
    let wpf = spec.weights_per_filter();
    let chunks = wpf.div_ceil(lanes);
    let mut expected_reduced = 0u64;
    for window_base in (0..windows).step_by(cols) {
        let window_count = cols.min(windows - window_base);
        let patches: Vec<Vec<i32>> = (0..window_count)
            .map(|i| {
                let w = window_base + i;
                window_patch(&spec, &input, w / out_w, w % out_w, 0, spec.in_channels)
            })
            .collect();
        for chunk in 0..chunks {
            let lane_base = chunk * lanes;
            let lane_count = lanes.min(wpf - lane_base);
            let mut group_values = Vec::with_capacity(window_count * lane_count);
            for patch in &patches {
                group_values.extend_from_slice(&patch[lane_base..lane_base + lane_count]);
            }
            if required_unsigned_precision(&group_values).min(pa) < pa {
                expected_reduced += 1;
            }
        }
    }
    assert!(expected_reduced > 0, "test data must exercise reduction");

    let run = FunctionalLoom::new(geometry).run_conv(&spec, &input, &weights, pa, pw);
    assert_eq!(run.reduced_groups, expected_reduced);
    assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
    // And the other kernels see the identical detection (same cycles) — the
    // wide path reads the fold from its `[u64; 4]` planes, the packed path
    // from 64-lane blocks, the bit-serial path from the same packed blocks.
    for kernel in [SipKernel::Packed, SipKernel::BitSerial] {
        let other = FunctionalLoom::new(geometry)
            .with_kernel(kernel)
            .run_conv(&spec, &input, &weights, pa, pw);
        assert_eq!(run, other, "{kernel:?}");
    }
}

/// Full-network equivalence: every compute layer of a small CNN (conv → pool →
/// conv → fc), fed the golden model's own traced activations, must come out of
/// the functional Loom engine bit-exact against the golden accumulators. This
/// end-to-end check was too slow to afford on the bit-serial kernel.
#[test]
fn functional_engine_matches_golden_model_over_a_whole_network() {
    use loom_core::loom_model::inference::{run_chain, InferenceOptions, NetworkParams};
    use loom_core::loom_model::layer::{Layer, PoolSpec};
    use loom_core::loom_model::network::Network;
    use loom_core::loom_model::synthetic::{synthetic_activations, ValueDistribution};
    use loom_core::loom_model::tensor::Shape3;
    use rand::{rngs::StdRng, SeedableRng};

    let padded = |in_channels, hw, filters| ConvSpec {
        in_channels,
        in_height: hw,
        in_width: hw,
        filters,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    };
    let network = Network::new(
        "mini-cnn",
        vec![
            Layer::conv("conv1", padded(3, 12, 8)),
            Layer::max_pool("pool1", PoolSpec::new(8, 12, 12, 2, 2)),
            Layer::conv("conv2", padded(8, 6, 12)),
            Layer::fully_connected("fc", FcSpec::new(12 * 6 * 6, 10)),
        ],
    )
    .unwrap();
    let pw = Precision::new(7).unwrap();
    let params = NetworkParams::synthetic(&network, &[pw], 7);
    let mut rng = StdRng::seed_from_u64(8);
    let input = Tensor3::from_vec(
        Shape3::new(3, 12, 12),
        synthetic_activations(
            &mut rng,
            3 * 12 * 12,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let options = InferenceOptions {
        activation_precision: Precision::new(8).unwrap(),
        relu: true,
    };
    let trace = run_chain(&network, &params, &input, options).unwrap();

    let geometry = LoomGeometry {
        filter_rows: 8,
        window_columns: 4,
        sip_lanes: 8,
        act_bits_per_cycle: 1,
    };
    let engine = FunctionalLoom::new(geometry);
    let mut checked = 0usize;
    for layer in network.layers() {
        let layer_trace = trace.for_layer(&layer.name).unwrap();
        match &layer.kind {
            loom_core::loom_model::layer::LayerKind::Conv(spec) => {
                let layer_input =
                    Tensor3::from_vec(spec.input_shape(), layer_trace.inputs.clone()).unwrap();
                let layer_weights = Tensor4::from_vec(
                    spec.weight_shape(),
                    params.for_layer(&layer.name).unwrap().values.clone(),
                )
                .unwrap();
                let run = engine.run_conv(
                    spec,
                    &layer_input,
                    &layer_weights,
                    required_precision(&layer_trace.inputs),
                    pw,
                );
                assert_eq!(run.outputs, layer_trace.accumulators, "{}", layer.name);
                assert!(run.cycles > 0, "{}", layer.name);
                checked += 1;
            }
            loom_core::loom_model::layer::LayerKind::FullyConnected(spec) => {
                let run = engine.run_fc(
                    spec,
                    &layer_trace.inputs,
                    &params.for_layer(&layer.name).unwrap().values,
                    pw,
                );
                assert_eq!(run.outputs, layer_trace.accumulators, "{}", layer.name);
                checked += 1;
            }
            loom_core::loom_model::layer::LayerKind::MaxPool(_) => {}
        }
    }
    assert_eq!(checked, 3, "all compute layers must be validated");
}
