//! The compressed bitplane weight format is lossless and invisible to the
//! datapath: round trips are bit-exact over ragged lanes and adversarial
//! plane patterns, the compressed kernel matches the dense kernel under
//! every signedness combination, and the compressed conv path — the only
//! conv path since the pack-once store landed — is bit-identical (outputs
//! *and* cycles) at every thread budget and against the bit-serial
//! reference kernel.

use loom_core::loom_mem::compress::{PLANE_COUNT, PLANE_WORDS};
use loom_core::loom_mem::{CompressedPlanes, PlaneRef};
use loom_core::loom_model::layer::ConvSpec;
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::Precision;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{
    compressed_inner_product, wide_inner_product, CompressedWideBlock, FunctionalLoom, SipKernel,
    WideBitplaneBlock,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread budgets the conv suite sweeps (mirrors `pool_invariance`).
const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

/// Every (weights_signed, activations_signed) kernel combination.
const SIGNEDNESS: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];

/// Dense plane/sign reference built independently of both packers.
fn dense_of(values: &[i32]) -> ([[u64; PLANE_WORDS]; PLANE_COUNT], [u64; PLANE_WORDS]) {
    let mut planes = [[0u64; PLANE_WORDS]; PLANE_COUNT];
    let mut signs = [0u64; PLANE_WORDS];
    for (lane, &v) in values.iter().enumerate() {
        let (word, bit) = (lane / 64, lane % 64);
        for (plane, words) in planes.iter_mut().enumerate() {
            words[word] |= u64::from((v as u32) >> plane & 1) << bit;
        }
        signs[word] |= u64::from(v < 0) << bit;
    }
    (planes, signs)
}

/// Maps one byte to an adversarial value: all-zero planes, pure sign
/// extension (-1), extreme magnitudes, and a checkerboard that forces a
/// stored plane to differ from the sign plane by a single bit.
fn adversarial(byte: u8) -> i32 {
    match byte % 8 {
        0 => 0,
        1 => -1,
        2 => i32::from(i16::MIN),
        3 => i32::from(i16::MAX),
        4 => 1,
        5 => -2,
        6 => 0x5555,
        _ => i32::from(byte as i8),
    }
}

/// Clamps a raw sample into the value range of a `bits`-wide operand.
fn bounded(raw: u32, bits: u32, signed: bool) -> i32 {
    let magnitude = (raw % (1 << bits)) as i32;
    if signed {
        magnitude - (1 << (bits - 1))
    } else {
        magnitude
    }
}

/// Shared checks: both packers round-trip exactly and the stream accounting
/// follows the stored-plane count.
fn assert_round_trip(values: &[i32]) -> CompressedPlanes {
    let (planes, signs) = dense_of(values);
    let c = CompressedPlanes::compress_values(values);
    assert_eq!(c.lanes(), values.len());
    let (back, back_signs) = c.to_dense();
    assert_eq!(back, planes, "magnitude planes must round-trip exactly");
    assert_eq!(back_signs, signs, "the sign plane must round-trip exactly");
    assert_eq!(
        c,
        CompressedPlanes::from_dense(values.len(), &planes, &signs)
    );
    let lanes = values.len() as u64;
    assert_eq!(
        c.compressed_bits(),
        32 + lanes + c.stored_planes().len() as u64 * lanes,
        "stream accounting must follow the stored-plane count"
    );
    let block = WideBitplaneBlock::pack(values);
    assert_eq!(CompressedWideBlock::compress(&block).decompress(), block);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trips are exact for arbitrary 16-bit values at every ragged
    /// lane count 1..=256.
    #[test]
    fn round_trip_is_exact_over_ragged_lanes(
        values in prop::collection::vec(-32768i32..32768, 1..257),
    ) {
        assert_round_trip(&values);
    }

    /// Round trips survive adversarial plane patterns — all-zero blocks,
    /// pure sign extension, extreme magnitudes — and every plane resolves
    /// to the class its dense content dictates (zero beats sign-extension
    /// when both apply, so elision never loses information).
    #[test]
    fn adversarial_plane_patterns_round_trip(
        bytes in prop::collection::vec(any::<u8>(), 1..257),
    ) {
        let values: Vec<i32> = bytes.iter().map(|&b| adversarial(b)).collect();
        let c = assert_round_trip(&values);
        let (planes, signs) = dense_of(&values);
        for bit in 0..PLANE_COUNT {
            match c.plane(bit as u8) {
                PlaneRef::Zero => prop_assert_eq!(planes[bit], [0; PLANE_WORDS]),
                PlaneRef::SignExtended => {
                    prop_assert_eq!(planes[bit], signs);
                    prop_assert_ne!(planes[bit], [0; PLANE_WORDS]);
                }
                PlaneRef::Stored(words) => {
                    prop_assert_eq!(*words, planes[bit]);
                    prop_assert_ne!(*words, signs);
                }
            }
        }
    }

    /// The compressed kernel computes the same inner product as the dense
    /// kernel for every signedness combination and ragged lane count, at
    /// whatever tier this host dispatches.
    #[test]
    fn compressed_kernel_matches_dense_for_all_signedness(
        raw in prop::collection::vec(any::<u32>(), 1..257),
        pw_bits in 2u32..9,
        pa_bits in 2u32..9,
    ) {
        let pw = Precision::new(pw_bits as u8).unwrap();
        let pa = Precision::new(pa_bits as u8).unwrap();
        for (weights_signed, activations_signed) in SIGNEDNESS {
            // One u32 sample carries both operands: weights from the high
            // half, activations from the low half.
            let weights: Vec<i32> = raw
                .iter()
                .map(|&r| bounded(r >> 16, pw_bits, weights_signed))
                .collect();
            let activations: Vec<i32> = raw
                .iter()
                .map(|&r| bounded(r & 0xFFFF, pa_bits, activations_signed))
                .collect();
            let dense = WideBitplaneBlock::pack(&weights);
            let acts = WideBitplaneBlock::pack(&activations);
            let compressed = CompressedWideBlock::compress(&dense);
            prop_assert_eq!(
                compressed_inner_product(
                    &compressed, &acts, pw, pa, weights_signed, activations_signed,
                ),
                wide_inner_product(&dense, &acts, pw, pa, weights_signed, activations_signed)
            );
        }
    }
}

fn conv_operands(spec: &ConvSpec, seed: u64) -> (Tensor3, Tensor4) {
    let p8 = Precision::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor3::from_vec(
        spec.input_shape(),
        synthetic_activations(
            &mut rng,
            spec.input_shape().len(),
            p8,
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            p8,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    (input, weights)
}

fn wide_geometry() -> LoomGeometry {
    LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    }
}

/// The wide conv path — which packs filters through the compressed weight
/// store — is bit-identical (outputs, cycles, reduced groups) at every
/// thread budget, and its outputs and cycles match the dense bit-serial
/// reference kernel exactly.
#[test]
fn compressed_conv_matches_dense_reference_at_every_thread_count() {
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let (input, weights) = conv_operands(&spec, 4242);
    let p8 = Precision::new(8).unwrap();
    let reference = FunctionalLoom::new(wide_geometry())
        .with_kernel(SipKernel::BitSerial)
        .run_conv(&spec, &input, &weights, p8, p8);
    let baseline = FunctionalLoom::new(wide_geometry()).run_conv(&spec, &input, &weights, p8, p8);
    assert_eq!(
        baseline, reference,
        "the compressed wide path must match the bit-serial reference"
    );
    for threads in THREAD_CURVE {
        let run = FunctionalLoom::new(wide_geometry())
            .with_threads(threads)
            .run_conv(&spec, &input, &weights, p8, p8);
        assert_eq!(baseline, run, "threads={threads}");
    }
}

/// Same invariance for a filter-tiled shape (few window groups, many
/// filters), the decomposition where per-tile packing could plausibly
/// diverge from the shared compressed cache.
#[test]
fn compressed_filter_tiled_conv_is_thread_invariant() {
    let spec = ConvSpec::simple(96, 6, 6, 128, 3);
    let (input, weights) = conv_operands(&spec, 4243);
    let p8 = Precision::new(8).unwrap();
    let baseline = FunctionalLoom::new(wide_geometry()).run_conv(&spec, &input, &weights, p8, p8);
    for threads in THREAD_CURVE {
        let run = FunctionalLoom::new(wide_geometry())
            .with_threads(threads)
            .run_conv(&spec, &input, &weights, p8, p8);
        assert_eq!(baseline, run, "threads={threads}");
    }
}
