//! Loopback integration suite for the serving front end: an in-process
//! server on an ephemeral port must answer every catalog model with
//! responses bit-identical to the direct engine — outputs *and* cycle
//! counts — and concurrent clients must coalesce into one micro-batch
//! without changing a single value.

use loom_core::loom_model::inference::InferenceOptions;
use loom_core::loom_sim::loom::network::NetworkEngine;
use loom_serve::batch::BatchConfig;
use loom_serve::client::Client;
use loom_serve::json::Json;
use loom_serve::model::{serving_geometry, ModelCatalog};
use loom_serve::server::{Server, ServerConfig};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn start_server(batch: BatchConfig) -> Server {
    Server::start(
        ModelCatalog::reduced(),
        ServerConfig {
            port: 0,
            batch,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral loopback port")
}

fn infer_body(model: &str, tier: &str, values: &[i32]) -> String {
    let values = Json::Array(values.iter().map(|&v| Json::from(v as i64)).collect());
    Json::Object(vec![
        ("model".to_string(), Json::from(model)),
        ("tier".to_string(), Json::from(tier)),
        ("inputs".to_string(), Json::Array(vec![values])),
    ])
    .to_string()
}

fn response_outputs(body: &str) -> (Vec<i64>, i64, i64) {
    let json = Json::parse(body).expect("responses are valid JSON");
    let outputs = json
        .get("outputs")
        .and_then(Json::as_array)
        .and_then(|t| t.first())
        .and_then(Json::as_array)
        .expect("responses carry outputs")
        .iter()
        .map(|v| v.as_i64().expect("outputs are integers"))
        .collect();
    let cycles = json
        .get("cycles")
        .and_then(Json::as_array)
        .and_then(|c| c.first())
        .and_then(Json::as_i64)
        .expect("responses carry cycles");
    let batch_items = json
        .get("batch_items")
        .and_then(Json::as_i64)
        .expect("responses carry batch_items");
    (outputs, cycles, batch_items)
}

/// Every registered catalog model, both tiers: the served response equals
/// the direct engine bit-for-bit (outputs and cycles).
#[test]
fn served_responses_are_bit_identical_to_the_direct_engine() {
    let server = start_server(BatchConfig {
        window: Duration::from_millis(1),
        ..BatchConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let catalog = ModelCatalog::reduced();
    let dynamic = NetworkEngine::new(serving_geometry());
    let fixed = dynamic.without_dynamic_precision();
    for model in catalog.models() {
        for (tier, engine) in [("dynamic", &dynamic), ("static", &fixed)] {
            let input = model.synthetic_input(1);
            let direct = engine
                .run(
                    &model.graph,
                    &model.params,
                    &input,
                    InferenceOptions::default(),
                )
                .unwrap();
            let response = client
                .infer(&infer_body(model.name, tier, input.as_slice()))
                .unwrap();
            assert_eq!(
                response.status, 200,
                "{}/{tier}: {}",
                model.name, response.body
            );
            let (outputs, cycles, _) = response_outputs(&response.body);
            let want: Vec<i64> = direct
                .trace
                .final_outputs()
                .iter()
                .map(|&v| v as i64)
                .collect();
            assert_eq!(outputs, want, "{}/{tier} outputs diverged", model.name);
            assert_eq!(
                cycles, direct.cycles as i64,
                "{}/{tier} cycles diverged",
                model.name
            );
        }
    }
}

/// Multi-tensor requests come back in request order, each item bit-identical
/// to the equivalent direct batch.
#[test]
fn multi_tensor_requests_preserve_order() {
    let server = start_server(BatchConfig {
        window: Duration::from_millis(1),
        max_batch: 4,
        ..BatchConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let catalog = ModelCatalog::reduced();
    let model = catalog.find("MiniMLP").unwrap();
    let inputs: Vec<_> = (0..3).map(|v| model.synthetic_input(v)).collect();
    let tensors = Json::Array(
        inputs
            .iter()
            .map(|t| Json::Array(t.as_slice().iter().map(|&v| Json::from(v as i64)).collect()))
            .collect(),
    );
    let body = Json::Object(vec![
        ("model".to_string(), Json::from("MiniMLP")),
        ("inputs".to_string(), tensors),
    ])
    .to_string();
    let response = client.infer(&body).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let direct = NetworkEngine::new(serving_geometry())
        .run_batch(
            &model.graph,
            &model.params,
            &inputs,
            InferenceOptions::default(),
        )
        .unwrap();
    let json = Json::parse(&response.body).unwrap();
    let tensors = json.get("outputs").and_then(Json::as_array).unwrap();
    assert_eq!(tensors.len(), 3);
    for (item, run) in tensors.iter().zip(&direct) {
        let got: Vec<i64> = item
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        let want: Vec<i64> = run
            .trace
            .final_outputs()
            .iter()
            .map(|&v| v as i64)
            .collect();
        assert_eq!(got, want);
    }
}

/// Concurrent clients hitting the same model within one batching window
/// coalesce into a single lock-step dispatch — observable via the response's
/// `batch_items` — and every coalesced response still matches the direct
/// engine exactly.
#[test]
fn concurrent_clients_coalesce_into_one_micro_batch() {
    let fan = 4;
    let server = start_server(BatchConfig {
        // A generous window so all clients land in the head job's batch; the
        // batch dispatches early the moment it fills, so the window's length
        // costs nothing when coalescing works.
        window: Duration::from_millis(2000),
        max_batch: fan,
        max_queue: 64,
        threads: 1,
    });
    let addr = server.addr();
    let catalog = ModelCatalog::reduced();
    let model = catalog.find("MiniMLP").unwrap();
    let handles: Vec<_> = (0..fan)
        .map(|v| {
            let input = model.synthetic_input(v as u64);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
                let response = client
                    .infer(&infer_body("MiniMLP", "dynamic", input.as_slice()))
                    .unwrap();
                (v, response)
            })
        })
        .collect();
    let engine = NetworkEngine::new(serving_geometry());
    for handle in handles {
        let (v, response) = handle.join().unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let (outputs, cycles, batch_items) = response_outputs(&response.body);
        assert_eq!(
            batch_items, fan as i64,
            "all {fan} requests must ride one dispatch"
        );
        let direct = engine
            .run(
                &model.graph,
                &model.params,
                &model.synthetic_input(v as u64),
                InferenceOptions::default(),
            )
            .unwrap();
        let want: Vec<i64> = direct
            .trace
            .final_outputs()
            .iter()
            .map(|&x| x as i64)
            .collect();
        assert_eq!(outputs, want, "client {v} diverged inside the micro-batch");
        assert_eq!(cycles, direct.cycles as i64);
    }
}

/// The discovery endpoints: health, the model listing (every catalog entry
/// with its input length), and stats counters that move.
#[test]
fn health_models_and_stats_endpoints_respond() {
    let server = start_server(BatchConfig {
        window: Duration::from_millis(1),
        ..BatchConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, r#"{"status":"ok"}"#);

    let models = client.request("GET", "/v1/models", "").unwrap();
    assert_eq!(models.status, 200);
    let json = Json::parse(&models.body).unwrap();
    let listed = json.get("models").and_then(Json::as_array).unwrap();
    let catalog = ModelCatalog::reduced();
    assert_eq!(listed.len(), catalog.models().len());
    for (entry, model) in listed.iter().zip(catalog.models()) {
        assert_eq!(entry.get("name").and_then(Json::as_str), Some(model.name));
        assert_eq!(
            entry.get("input_len").and_then(Json::as_i64),
            Some(model.input_len as i64)
        );
        assert!(entry.get("packed_layers").and_then(Json::as_i64).unwrap() > 0);
    }

    let stats = client.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    let parsed = Json::parse(&stats.body).unwrap();
    assert!(parsed.get("requests").and_then(Json::as_i64).unwrap() >= 2);
    assert_eq!(parsed.get("overloaded").and_then(Json::as_i64), Some(0));
}

/// The `/metrics` endpoint reports the process-wide weight store and every
/// catalog model's prepack cost and compression footprint — the observable
/// contract the serving bench and its CI gate read.
#[test]
fn metrics_endpoint_reports_weight_store_and_per_model_compression() {
    fn as_f64(value: Option<&Json>) -> f64 {
        match value {
            Some(Json::Number(n)) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }
    let server = start_server(BatchConfig {
        window: Duration::from_millis(1),
        ..BatchConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200, "{}", metrics.body);
    let json = Json::parse(&metrics.body).unwrap();

    let store = json.get("weight_store").expect("metrics carry the store");
    // The catalog the server prepacked guarantees a populated store.
    assert!(store.get("packs").and_then(Json::as_i64).unwrap() > 0);
    assert!(store.get("entries").and_then(Json::as_i64).unwrap() > 0);
    assert!(store.get("resident_bytes").and_then(Json::as_i64).unwrap() > 0);
    assert!(store.get("hits").and_then(Json::as_i64).unwrap() >= 0);
    assert!(as_f64(store.get("pack_seconds")) >= 0.0);
    let store_ratio = as_f64(store.get("compression_ratio"));
    assert!(
        store_ratio > 0.0 && store_ratio <= 1.0,
        "store stream ratio {store_ratio} out of range"
    );

    let models = json.get("models").and_then(Json::as_array).unwrap();
    let catalog = ModelCatalog::reduced();
    assert_eq!(models.len(), catalog.models().len());
    for (entry, model) in models.iter().zip(catalog.models()) {
        assert_eq!(entry.get("name").and_then(Json::as_str), Some(model.name));
        assert!(as_f64(entry.get("prepack_seconds")) >= 0.0);
        assert_eq!(
            entry.get("packed_layers").and_then(Json::as_i64),
            Some(model.cache.packed_layers() as i64)
        );
        // Reduced catalog models all fit under the FC prepack cap.
        assert_eq!(
            entry
                .get("unpacked_fc_layers")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(model.cache.unpacked_fc_layers().len())
        );
        let dense = entry.get("dense_bytes").and_then(Json::as_i64).unwrap();
        let compressed = entry
            .get("compressed_bytes")
            .and_then(Json::as_i64)
            .unwrap();
        assert!(dense > 0, "{} dense bytes", model.name);
        assert!(
            compressed > 0 && compressed <= dense,
            "{}: compressed {compressed} vs dense {dense}",
            model.name
        );
        let ratio = as_f64(entry.get("compression_ratio"));
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "{} stream ratio {ratio} out of range",
            model.name
        );
    }
}

/// The static tier returns the same output values as dynamic (the
/// conformance contract) while costing at least as many cycles — dynamic
/// precision detection only ever trims work.
#[test]
fn static_tier_matches_values_and_costs_no_fewer_cycles() {
    let server = start_server(BatchConfig {
        window: Duration::from_millis(1),
        ..BatchConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let catalog = ModelCatalog::reduced();
    let model = catalog.find("MiniAlexNet").unwrap();
    let input = model.synthetic_input(5);
    let body_dyn = infer_body(model.name, "dynamic", input.as_slice());
    let body_static = infer_body(model.name, "static", input.as_slice());
    let dynamic = client.infer(&body_dyn).unwrap();
    let fixed = client.infer(&body_static).unwrap();
    assert_eq!(dynamic.status, 200);
    assert_eq!(fixed.status, 200);
    let (out_dyn, cycles_dyn, _) = response_outputs(&dynamic.body);
    let (out_static, cycles_static, _) = response_outputs(&fixed.body);
    assert_eq!(out_dyn, out_static, "tiers must agree on values");
    assert!(
        cycles_static >= cycles_dyn,
        "static ({cycles_static}) must not beat dynamic ({cycles_dyn})"
    );
}
