//! The differential conformance harness: every accelerator registered in the
//! default [`Registry`] — bit-parallel DPNN, activation-serial Stripes,
//! detecting DStripes, and the three Loom variants — executes the reduced zoo
//! through the shared graph executor, and all of them must land bit-exactly
//! on the golden i64 reference (and therefore on each other).
//!
//! Three layers of checks:
//!
//! 1. **Zoo cross-validation** (`validate::cross_validate`): whole reduced
//!    networks, batched, every registered backend against the golden trace.
//! 2. **Kernel properties**: randomized layers (ragged lane counts, mixed
//!    signedness, zero blocks) where `stripes == dstripes == dpnn == golden`,
//!    mirroring the packed==serial SIP suite.
//! 3. **Cycle-model consistency**: each comparator backend's functionally
//!    measured cycles replayed against the analytic `Accelerator` model on
//!    the mini zoo — exact, including DStripes' detected per-group
//!    precisions. (Loom's functional↔analytic agreement is covered by the
//!    `validate_conv`/`validate_fc` suites, which allow its one-cycle
//!    pipeline-fill skew.)

use loom_core::loom_model::fixed::required_precision;
use loom_core::loom_model::graph::{LayerGraph, NodeOp};
use loom_core::loom_model::inference::{InferenceOptions, NetworkParams};
use loom_core::loom_model::layer::{ConvSpec, FcSpec, LayerKind};
use loom_core::loom_model::reference::{conv_forward, fc_forward};
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::LayerPrecisionSpec;
use loom_core::loom_sim::config::EquivalentConfig;
use loom_core::loom_sim::datapath::{
    FunctionalDStripes, FunctionalDatapath, FunctionalDpnn, FunctionalStripes,
};
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::validate::cross_validate;
use loom_core::loom_sim::Registry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zoo_input(graph: &LayerGraph, seed: u64) -> Tensor3 {
    let shape = graph.input_shape().expect("zoo graphs start with a conv");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor3::from_vec(
        shape,
        synthetic_activations(
            &mut rng,
            shape.len(),
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .unwrap()
}

/// Every default-registry backend runs every reduced-zoo network bit-exact
/// against the golden model — the acceptance gate CI's `datapath-conformance`
/// step enforces.
#[test]
fn every_registered_backend_matches_golden_on_the_reduced_zoo() {
    let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
    for graph in graphs::reduced_all() {
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 77);
        let inputs = [zoo_input(&graph, 1), zoo_input(&graph, 2)];
        let v = cross_validate(
            &registry,
            &graph,
            &params,
            &inputs,
            InferenceOptions::default(),
            2,
        )
        .unwrap();
        // All six defaults expose functional datapaths, so a missing row
        // means a backend silently dropped out of coverage.
        assert_eq!(
            v.backends.len(),
            registry.len(),
            "{}: every registered backend must run",
            graph.name()
        );
        let divergent: Vec<&str> = v
            .backends
            .iter()
            .filter(|b| !b.matches_golden)
            .map(|b| b.accelerator.as_str())
            .collect();
        assert!(
            v.all_match(),
            "{}: backends diverged from golden: {divergent:?}",
            graph.name()
        );
        for b in &v.backends {
            assert!(
                b.cycles > 0,
                "{}: {} reported 0 cycles",
                graph.name(),
                b.accelerator
            );
        }
    }
}

/// A seventh (custom) backend registered behind an existing key is picked up
/// by the same harness with no test changes — the "impl + registry entry =
/// conformance coverage" contract.
#[test]
fn conformance_follows_registry_contents_not_a_hardcoded_list() {
    let mut registry = Registry::empty(EquivalentConfig::BASELINE_128);
    registry.register(loom_core::loom_sim::accelerator::build(
        AcceleratorKind::Dpnn,
        EquivalentConfig::BASELINE_128,
    ));
    let graph = graphs::reduced_by_name("MiniNiN").unwrap();
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 5);
    let inputs = [zoo_input(&graph, 4)];
    let v = cross_validate(
        &registry,
        &graph,
        &params,
        &inputs,
        InferenceOptions::default(),
        1,
    )
    .unwrap();
    assert_eq!(v.backends.len(), 1, "exactly the registered backends run");
    assert_eq!(v.backends[0].accelerator, "DPNN");
    assert!(v.all_match());
}

/// The comparator backends' functionally measured cycles, replayed against
/// the analytic `Accelerator` cycle models on the mini zoo: exact for DPNN
/// and Stripes (static), and exact for DStripes once its detected per-group
/// precisions are fed back into the analytic model.
#[test]
fn functional_cycles_match_analytic_models_on_the_mini_zoo() {
    let config = EquivalentConfig::BASELINE_128;
    let geo = config.dpnn();
    let registry = Registry::with_defaults(config);
    let dpnn_acc = registry.get(AcceleratorKind::Dpnn).unwrap();
    let stripes_acc = registry.get(AcceleratorKind::Stripes).unwrap();
    let dstripes_acc = registry.get(AcceleratorKind::DStripes).unwrap();
    let fdpnn = FunctionalDpnn::new(geo);
    let fstripes = FunctionalStripes::new(geo);
    let fdstripes = FunctionalDStripes::new(geo);

    let mut convs_checked = 0usize;
    let mut fcs_checked = 0usize;
    for graph in graphs::reduced_all() {
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 7);
        let trace = graph
            .run(&params, &zoo_input(&graph, 3), InferenceOptions::default())
            .unwrap();
        for node in graph.nodes() {
            let layer_trace = trace
                .layers
                .iter()
                .find(|l| l.layer_name == node.name)
                .expect("trace covers every node");
            let weights = params.for_layer(&node.name).map(|w| &w.values);
            match &node.op {
                NodeOp::Layer(LayerKind::Conv(spec)) => {
                    let input =
                        Tensor3::from_vec(spec.input_shape(), layer_trace.inputs.clone()).unwrap();
                    let weights =
                        Tensor4::from_vec(spec.weight_shape(), weights.unwrap().clone()).unwrap();
                    let pa = required_precision(input.as_slice());
                    let pw = required_precision(weights.as_slice());
                    let static_spec = LayerPrecisionSpec::static_profile(pa, pw);

                    let d = fdpnn.run_conv(spec, &input, &weights);
                    assert_eq!(
                        d.cycles,
                        dpnn_acc.conv_cycles(spec, &static_spec).0,
                        "DPNN {}/{}",
                        graph.name(),
                        node.name
                    );

                    let s = fstripes.run_conv(spec, &input, &weights);
                    assert_eq!(
                        s.run.cycles,
                        stripes_acc.conv_cycles(spec, &static_spec).0,
                        "Stripes {}/{}",
                        graph.name(),
                        node.name
                    );

                    let ds = fdstripes.run_conv(spec, &input, &weights);
                    let dynamic_spec = LayerPrecisionSpec {
                        dynamic_activation: ds.explicit_source(),
                        ..LayerPrecisionSpec::static_profile(pa, pw)
                    };
                    assert_eq!(
                        ds.run.cycles,
                        dstripes_acc.conv_cycles(spec, &dynamic_spec).0,
                        "DStripes {}/{}",
                        graph.name(),
                        node.name
                    );
                    convs_checked += 1;
                }
                NodeOp::Layer(LayerKind::FullyConnected(spec)) => {
                    let weights = weights.unwrap();
                    let fc_input = &layer_trace.inputs;
                    // FCLs are precision-independent on all three comparators
                    // and identical to the bit-parallel baseline.
                    let full = LayerPrecisionSpec::full_precision_static();
                    let analytic = dpnn_acc.fc_cycles(spec, &full).0;
                    assert_eq!(stripes_acc.fc_cycles(spec, &full).0, analytic);
                    assert_eq!(dstripes_acc.fc_cycles(spec, &full).0, analytic);
                    for (name, backend) in [
                        ("DPNN", &fdpnn as &dyn FunctionalDatapath),
                        ("Stripes", &fstripes),
                        ("DStripes", &fdstripes),
                    ] {
                        let run = backend.fc(spec, fc_input, weights);
                        assert_eq!(
                            run.cycles,
                            analytic,
                            "{name} {}/{}",
                            graph.name(),
                            node.name
                        );
                    }
                    fcs_checked += 1;
                }
                _ => {}
            }
        }
    }
    assert!(convs_checked > 10, "checked {convs_checked} convolutions");
    assert!(fcs_checked > 2, "checked {fcs_checked} FC layers");
}

fn random_conv_case(
    spec: &ConvSpec,
    seed: u64,
    pa: Precision,
    pw: Precision,
    negate: bool,
) -> (Tensor3, Tensor4) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut activations = synthetic_activations(
        &mut rng,
        spec.input_shape().len(),
        pa,
        ValueDistribution::activations(),
    );
    if negate {
        // Cover signed (pre-ReLU-style) activations too.
        for a in activations.iter_mut().step_by(2) {
            *a = -*a;
        }
    }
    let input = Tensor3::from_vec(spec.input_shape(), activations).unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            pw,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    (input, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: `stripes == dstripes == dpnn == golden` on random
    /// convolutional layers — ragged channel/kernel combinations (inner
    /// products from a handful to hundreds of lanes), grouped filters, both
    /// signedness regimes, and zero-heavy synthetic data.
    #[test]
    fn comparator_conv_kernels_agree_with_golden(
        in_channels in 1usize..=8,
        size in 3usize..=9,
        filters in 1usize..=8,
        kernel in 1usize..=3,
        padding in 0usize..=1,
        grouped in any::<bool>(),
        negate in any::<bool>(),
        pa_bits in 1u8..=8,
        pw_bits in 1u8..=8,
        seed in any::<u64>(),
    ) {
        let mut spec = ConvSpec {
            padding,
            ..ConvSpec::simple(in_channels, size, size, filters, kernel.min(size))
        };
        if grouped && in_channels % 2 == 0 && filters % 2 == 0 {
            spec.groups = 2;
        }
        let (input, weights) = random_conv_case(
            &spec,
            seed,
            Precision::new(pa_bits).unwrap(),
            Precision::new(pw_bits).unwrap(),
            negate,
        );
        let golden = conv_forward(&spec, &input, &weights);
        let geo = EquivalentConfig::BASELINE_128.dpnn();
        let dpnn = FunctionalDpnn::new(geo).conv(&spec, &input, &weights);
        let stripes = FunctionalStripes::new(geo).conv(&spec, &input, &weights);
        let dstripes = FunctionalDStripes::new(geo).conv(&spec, &input, &weights);
        prop_assert_eq!(&dpnn.outputs, &golden);
        prop_assert_eq!(&stripes.outputs, &golden);
        prop_assert_eq!(&dstripes.outputs, &golden);
        // Detection may only ever make DStripes cheaper than static Stripes.
        prop_assert!(dstripes.cycles <= stripes.cycles);
    }

    /// Property: all three comparator FC paths equal the golden model at any
    /// lane count from 1 to 256 — and cost exactly the bit-parallel cycles.
    #[test]
    fn comparator_fc_kernels_agree_with_golden(
        in_features in 1usize..=256,
        out_features in 1usize..=8,
        negate in any::<bool>(),
        pw_bits in 1u8..=8,
        seed in any::<u64>(),
    ) {
        let spec = FcSpec::new(in_features, out_features);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut input = synthetic_activations(
            &mut rng,
            in_features,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        if negate {
            for a in input.iter_mut().step_by(2) {
                *a = -*a;
            }
        }
        let weights = synthetic_weights(
            &mut rng,
            in_features * out_features,
            Precision::new(pw_bits).unwrap(),
            ValueDistribution::weights(),
        );
        let golden = fc_forward(&spec, &input, &weights);
        let geo = EquivalentConfig::BASELINE_128.dpnn();
        for backend in [
            &FunctionalDpnn::new(geo) as &dyn FunctionalDatapath,
            &FunctionalStripes::new(geo),
            &FunctionalDStripes::new(geo),
        ] {
            let run = backend.fc(&spec, &input, &weights);
            prop_assert_eq!(&run.outputs, &golden);
            prop_assert_eq!(
                run.cycles,
                loom_core::loom_sim::dpnn::fc_cycles(&geo, &spec)
            );
        }
    }
}
