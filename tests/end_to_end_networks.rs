//! End-to-end runs of all six evaluated networks through every accelerator and
//! both accuracy profiles, checking the qualitative results the paper reports.

use loom_core::experiment::{evaluate_all_networks, evaluate_network, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_precision::AccuracyTarget;
use loom_core::loom_sim::counts::geomean;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::{EquivalentConfig, LoomVariant};

#[test]
fn every_network_runs_on_every_accelerator_under_both_profiles() {
    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        let settings = ExperimentSettings {
            target,
            ..Default::default()
        };
        for eval in evaluate_all_networks(&settings) {
            for (kind, r) in &eval.relatives {
                assert!(
                    r.conv_speedup.is_finite() && r.conv_speedup > 0.5,
                    "{target}/{}/{kind}: conv {}",
                    eval.network,
                    r.conv_speedup
                );
                assert!(
                    r.all_speedup >= 0.9,
                    "{target}/{}/{kind}: all {}",
                    eval.network,
                    r.all_speedup
                );
            }
        }
    }
}

#[test]
fn headline_geomeans_reproduce_the_paper_shape() {
    // Paper (100% profiles, config 128): LM1b conv geomean 3.25x, FCL 1.74x,
    // all-layers >3x; Stripes conv 1.84x; LM1b more than 2.5x more energy
    // efficient overall.
    let evals = evaluate_all_networks(&ExperimentSettings::default());
    let lm1b = |f: &dyn Fn(&loom_core::experiment::RelativeResult) -> f64| -> Vec<f64> {
        evals
            .iter()
            .map(|e| {
                f(&e.result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
                    .unwrap())
            })
            .filter(|v| v.is_finite())
            .collect()
    };
    let conv = geomean(&lm1b(&|r| r.conv_speedup));
    let fc = geomean(&lm1b(&|r| r.fc_speedup));
    let all = geomean(&lm1b(&|r| r.all_speedup));
    let eff = geomean(&lm1b(&|r| r.all_efficiency));
    assert!((2.9..=3.6).contains(&conv), "conv geomean {conv}");
    assert!((1.55..=1.95).contains(&fc), "fc geomean {fc}");
    assert!(all > 2.9, "all-layer geomean {all}");
    assert!(eff > 2.0, "all-layer efficiency geomean {eff}");

    let stripes_conv = geomean(
        &evals
            .iter()
            .map(|e| e.result_for(AcceleratorKind::Stripes).unwrap().conv_speedup)
            .collect::<Vec<_>>(),
    );
    assert!(
        (1.7..=2.0).contains(&stripes_conv),
        "Stripes conv geomean {stripes_conv}"
    );
}

#[test]
fn relaxed_profile_is_faster_than_lossless_everywhere() {
    let full = evaluate_all_networks(&ExperimentSettings::default());
    let relaxed = evaluate_all_networks(&ExperimentSettings {
        target: AccuracyTarget::Relative99,
        ..Default::default()
    });
    for (f, r) in full.iter().zip(relaxed.iter()) {
        let fs = f
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        let rs = r
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        assert!(
            rs.conv_speedup >= fs.conv_speedup * 0.999,
            "{}: 99% {} vs 100% {}",
            f.network,
            rs.conv_speedup,
            fs.conv_speedup
        );
    }
}

#[test]
fn googlenet_fc_benefits_from_cascading() {
    // GoogLeNet's 1000-output classifier under-fills the 2048-SIP grid; with
    // cascading the paper still reports a 2.25x FCL speedup for LM1b.
    let eval = evaluate_network(&zoo::googlenet(), &ExperimentSettings::default());
    let lm = eval
        .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
        .unwrap();
    assert!(
        (1.8..=2.5).contains(&lm.fc_speedup),
        "GoogLeNet FCL {}",
        lm.fc_speedup
    );
}

#[test]
fn smaller_configs_keep_loom_ahead_of_dpnn() {
    for macs in [32usize, 64, 256] {
        let settings = ExperimentSettings {
            config: EquivalentConfig::new(macs).unwrap(),
            ..Default::default()
        };
        let eval = evaluate_network(&zoo::vgg19(), &settings);
        let lm = eval
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        assert!(lm.all_speedup > 1.0, "config {macs}: {}", lm.all_speedup);
    }
}
