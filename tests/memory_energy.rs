//! Memory-hierarchy and energy-model consistency across crates: footprint
//! arithmetic, bandwidth savings, §4.5 sizing claims, and energy ordering.

use loom_core::experiment::{build_assignment, ExperimentSettings};
use loom_core::loom_energy::area::core_area_ratio;
use loom_core::loom_energy::EnergyModel;
use loom_core::loom_mem::hierarchy::{
    network_weight_bytes, required_am_bytes, MemoryConfig, MemorySystem,
};
use loom_core::loom_mem::packing::{baseline_footprint_bits, packed_footprint_bits};
use loom_core::loom_mem::traffic::StoragePrecision;
use loom_core::loom_model::zoo;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::{table1, AccuracyTarget};
use loom_core::loom_sim::engine::{AcceleratorKind, Simulator};
use loom_core::loom_sim::{EquivalentConfig, LoomVariant};

#[test]
fn packed_footprints_match_the_paper_formula() {
    // The paper: Loom reduces weight and activation bits read by (16-P)/16.
    for bits in 1u8..=16 {
        let p = Precision::new(bits).unwrap();
        let packed = packed_footprint_bits(10_000, p) as f64;
        let baseline = baseline_footprint_bits(10_000) as f64;
        let saving = (baseline - packed) / baseline;
        assert!((saving - f64::from(16 - bits) / 16.0).abs() < 1e-12);
    }
}

#[test]
fn loom_reads_fewer_bits_than_dpnn_on_every_network() {
    let sim = Simulator::baseline_128();
    for net in zoo::all() {
        let assignment = build_assignment(&net, &ExperimentSettings::default());
        let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        let ratio =
            lm.total_traffic().total_bits() as f64 / dpnn.total_traffic().total_bits() as f64;
        assert!(ratio < 0.85, "{}: traffic ratio {ratio}", net.name());
        assert!(ratio > 0.3, "{}: traffic ratio {ratio}", net.name());
    }
}

#[test]
fn activation_memory_sizing_matches_section_4_5() {
    // DPNN needs ~2 MB for every network except VGG-19; Loom's packed storage
    // halves that (the paper provisions 1 MB).
    let mut max_dpnn = 0u64;
    let mut max_loom = 0u64;
    for net in zoo::all() {
        if net.name() == "VGG19" {
            assert!(required_am_bytes(&net, Precision::FULL) > 4 * 1024 * 1024);
            continue;
        }
        max_dpnn = max_dpnn.max(required_am_bytes(&net, Precision::FULL));
        max_loom = max_loom.max(required_am_bytes(&net, Precision::new(8).unwrap()));
    }
    assert!(
        max_dpnn <= 2 * 1024 * 1024 + 512 * 1024,
        "DPNN AM {max_dpnn}"
    );
    assert!(max_loom <= 1024 * 1024 + 256 * 1024, "Loom AM {max_loom}");
}

#[test]
fn weight_footprint_shrinks_with_profile_precisions() {
    for net in zoo::all() {
        let profile = table1::profile(net.name(), AccuracyTarget::Lossless).unwrap();
        let full = network_weight_bytes(&net, |_| Precision::FULL);
        let packed = network_weight_bytes(&net, |_| profile.conv_weight);
        assert!(packed < full, "{}", net.name());
    }
}

#[test]
fn fully_connected_layers_are_offchip_bound_with_lpddr4() {
    // §4.5: "fully-connected layers are off-chip bound whereas the
    // convolutional layers are compute bound".
    let sim = Simulator::baseline_128();
    let net = zoo::vgg19();
    let assignment = build_assignment(&net, &ExperimentSettings::default());
    let run = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
    let system = MemorySystem::with_lpddr4(MemoryConfig::loom_default());
    for (layer_sim, layer) in run.layers.iter().zip(net.layers().iter()) {
        let usage = system.evaluate_layer(
            &layer.kind,
            StoragePrecision {
                activation: layer_sim.storage.activation,
                weight: layer_sim.storage.weight,
            },
        );
        if layer.kind.is_fc() && layer.kind.total_weights() > 10_000_000 {
            assert!(
                usage.offchip_cycles > layer_sim.cycles,
                "{} should be memory bound",
                layer_sim.layer_name
            );
        }
        if layer.kind.is_conv() {
            assert!(
                layer_sim.cycles > usage.offchip_cycles / 4,
                "{} should be (nearly) compute bound",
                layer_sim.layer_name
            );
        }
    }
}

#[test]
fn energy_model_orders_designs_as_the_paper_does() {
    let sim = Simulator::baseline_128();
    let model = EnergyModel::baseline_128();
    let net = zoo::vgg_m();
    let assignment = build_assignment(&net, &ExperimentSettings::default());
    let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
    let mut efficiencies = Vec::new();
    for variant in [LoomVariant::Lm1b, LoomVariant::Lm2b, LoomVariant::Lm4b] {
        let kind = AcceleratorKind::Loom(variant);
        let lm = sim.simulate(kind, &net, &assignment);
        efficiencies.push(model.efficiency(AcceleratorKind::Dpnn, &dpnn, 0, kind, &lm, 0));
    }
    // Every variant is more efficient than the baseline; the per-variant
    // ordering of efficiency/speedup trade-offs is checked in loom-energy.
    for (i, eff) in efficiencies.iter().enumerate() {
        assert!(*eff > 1.5, "variant {i}: {eff}");
    }
}

#[test]
fn area_ratios_hold_across_configurations() {
    for macs in [32usize, 128, 512] {
        let cfg = EquivalentConfig::new(macs).unwrap();
        let r = core_area_ratio(LoomVariant::Lm1b, cfg);
        assert!(r > 1.0 && r < 2.0, "config {macs}: ratio {r}");
    }
}
