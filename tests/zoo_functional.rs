//! The zoo functional suite: whole networks — including branching
//! GoogLeNet — through the DAG executor and the batched, parallel functional
//! Loom engine, validated bit-exact against the golden model.
//!
//! The suite runs the topology-preserving reduced zoo variants
//! (`loom_model::zoo::graphs::reduced_*`), which keep every structural
//! feature of the originals (grouped convolutions, 1×1 cccp stacks,
//! inception branches with padded pools and channel concats, FC heads) at a
//! MAC count that stays affordable in debug builds. CI additionally runs the
//! full-scale networks through `functional_bench`, which fails the job on any
//! divergence.

use loom_core::loom_model::graph::{GraphBuilder, LayerGraph, GRAPH_INPUT};
use loom_core::loom_model::inference::{InferenceOptions, NetworkParams};
use loom_core::loom_model::layer::{ConvSpec, FcSpec};
use loom_core::loom_model::synthetic::{synthetic_activations, ValueDistribution};
use loom_core::loom_model::tensor::Tensor3;
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::Precision;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::NetworkEngine;
use loom_core::loom_sim::validate::validate_network;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn geometry() -> LoomGeometry {
    // A scaled-down grid keeps the suite fast while exercising the same
    // tiling logic as the paper's 128-row configuration.
    LoomGeometry {
        filter_rows: 8,
        window_columns: 4,
        sip_lanes: 8,
        act_bits_per_cycle: 1,
    }
}

fn zoo_input(graph: &LayerGraph, seed: u64) -> Tensor3 {
    let shape = graph.input_shape().expect("zoo graphs start with a conv");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor3::from_vec(
        shape,
        synthetic_activations(
            &mut rng,
            shape.len(),
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .unwrap()
}

/// Golden-trace equivalence over the full reduced zoo: every network's
/// functional run — batched, on two worker threads — must be bit-identical
/// to the golden graph executor, layer by layer.
#[test]
fn reduced_zoo_matches_golden_reference() {
    for graph in graphs::reduced_all() {
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 77);
        let inputs = [zoo_input(&graph, 1), zoo_input(&graph, 2)];
        let v = validate_network(
            geometry(),
            &graph,
            &params,
            &inputs,
            InferenceOptions::default(),
            2,
        )
        .unwrap();
        assert!(
            v.traces_match,
            "{} diverged from the golden model",
            graph.name()
        );
        assert_eq!(v.layers, graph.nodes().len(), "{}", graph.name());
        assert!(v.cycles > 0, "{}", graph.name());
    }
}

/// The branching GoogLeNet variant really branches: the functional engine
/// must handle its concat nodes, and dynamic precision detection must fire
/// somewhere in the network.
#[test]
fn reduced_googlenet_exercises_branches_and_detection() {
    let graph = graphs::reduced_googlenet();
    assert!(graph.concat_nodes().count() >= 3);
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 5);
    let run = NetworkEngine::new(geometry())
        .run(
            &graph,
            &params,
            &zoo_input(&graph, 9),
            InferenceOptions::default(),
        )
        .unwrap();
    assert!(
        run.reduced_groups > 0,
        "synthetic data must trigger reduction"
    );
    // The trace covers every node, ending at the classifier.
    assert_eq!(run.trace.layers.len(), graph.nodes().len());
    assert_eq!(run.trace.final_outputs().len(), 10);
}

/// Thread-count invariance: the same batch on 1, 2 and 8 worker threads must
/// produce bit-identical results (traces, cycles, and reduced-group counts).
#[test]
fn thread_count_does_not_change_zoo_results() {
    let graph = graphs::reduced_googlenet();
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 21);
    let inputs: Vec<Tensor3> = (0..3).map(|i| zoo_input(&graph, 30 + i)).collect();
    let options = InferenceOptions::default();
    let reference = NetworkEngine::new(geometry())
        .run_batch(&graph, &params, &inputs, options)
        .unwrap();
    for threads in [2, 8] {
        let runs = NetworkEngine::new(geometry())
            .with_threads(threads)
            .run_batch(&graph, &params, &inputs, options)
            .unwrap();
        assert_eq!(runs, reference, "{threads} threads diverged");
    }
}

/// A tiny branching graph for the batch property test — small enough that
/// proptest can afford dozens of cases.
fn tiny_branching_graph() -> LayerGraph {
    let b3 = ConvSpec {
        padding: 1,
        ..ConvSpec::simple(3, 4, 4, 2, 3)
    };
    GraphBuilder::new("tiny-fork")
        .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 6, 6, 3, 3))
        .conv("b1", "stem", ConvSpec::simple(3, 4, 4, 2, 1))
        .conv("b3", "stem", b3)
        .concat("merge", &["b1", "b3"])
        .fully_connected("fc", "merge", FcSpec::new(4 * 16, 3))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch-of-N equals N batches of 1, for the golden executor and the
    /// functional engine alike, at any thread count.
    #[test]
    fn batch_of_n_equals_n_single_runs(
        n in 1usize..=4,
        threads in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let graph = tiny_branching_graph();
        let params =
            NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], seed);
        let inputs: Vec<Tensor3> =
            (0..n).map(|i| zoo_input(&graph, seed.wrapping_add(i as u64))).collect();
        let options = InferenceOptions::default();

        // Golden executor.
        let golden_batch = graph.run_batch(&params, &inputs, options).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = graph.run(&params, input, options).unwrap();
            prop_assert_eq!(&golden_batch[i], &single);
        }

        // Functional engine, batched and parallel, against the same golden.
        let engine = NetworkEngine::new(geometry()).with_threads(threads);
        let runs = engine.run_batch(&graph, &params, &inputs, options).unwrap();
        prop_assert_eq!(runs.len(), n);
        for (run, golden) in runs.iter().zip(golden_batch.iter()) {
            prop_assert_eq!(&run.trace, golden);
        }
        for (i, input) in inputs.iter().enumerate() {
            let single = engine.run(&graph, &params, input, options).unwrap();
            prop_assert_eq!(&runs[i], &single);
        }
    }
}

/// The full-scale zoo graphs resolve and declare consistent entry shapes;
/// execution at full scale lives in CI's `functional_bench` gate.
#[test]
fn full_scale_zoo_graphs_are_well_formed() {
    for name in ["NiN", "AlexNet", "GoogLeNet", "VGGS", "VGGM", "VGG19"] {
        let graph = graphs::by_name(name).unwrap();
        let shape = graph.input_shape().unwrap();
        assert_eq!(shape.c, 3, "{name}");
        assert!(graph.total_macs() > 100_000_000, "{name}");
    }
    // The branching GoogLeNet graph replaces the linear aggregate form: it
    // concatenates nine inception modules.
    assert_eq!(
        graphs::by_name("googlenet").unwrap().concat_nodes().count(),
        9
    );
}
