//! Thread-count invariance of the work-stealing pool and the cost-model
//! layer decomposition: any thread budget, any task plan, bit-identical
//! results.
//!
//! The pool's determinism argument is structural — tasks cover disjoint
//! output ranges and merge in task order — so these suites hammer the
//! schedule-dependent paths: skewed job costs that force stealing, layers
//! whose cost model picks different plans at different budgets (window
//! chunks, filter tiles, FC row groups), and whole-network batch-of-1 runs
//! where *intra-layer* tasks are the only parallelism available.

use loom_core::loom_model::graph::LayerGraph;
use loom_core::loom_model::inference::{InferenceOptions, NetworkParams};
use loom_core::loom_model::layer::ConvSpec;
use loom_core::loom_model::network::NetworkBuilder;
use loom_core::loom_model::synthetic::{
    synthetic_activations, synthetic_weights, ValueDistribution,
};
use loom_core::loom_model::tensor::{Tensor3, Tensor4};
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::Precision;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::{FunctionalLoom, NetworkEngine};
use loom_core::loom_sim::pool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread budgets every suite sweeps: inline, even splits, and more workers
/// than most job counts (so some deques start empty and must steal).
const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

/// Deterministic spin: repeated multiply-add so job cost scales with `rounds`
/// but the result depends only on the job seed.
fn spin(seed: u64, rounds: u64) -> u64 {
    let mut acc = seed;
    for _ in 0..rounds {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ordered_map` returns bit-identical, order-preserving results at every
    /// thread count for random job counts and heavily skewed per-job costs.
    /// The costs are front-loaded (early jobs up to ~100x heavier), which
    /// overloads worker 0's deque and forces the other participants to steal.
    #[test]
    fn ordered_map_is_thread_invariant_under_skew(
        jobs in 1usize..180,
        seed in any::<u64>(),
    ) {
        let job = |i: usize| {
            let heavy = if i < 8 { 4096 } else { 64 };
            spin(seed ^ i as u64, heavy) ^ (i as u64)
        };
        let baseline: Vec<u64> = (0..jobs).map(job).collect();
        for threads in THREAD_CURVE {
            let pooled = pool::ordered_map(threads, jobs, job);
            prop_assert_eq!(&baseline, &pooled);
        }
    }

    /// `ordered_map_with` (the arena-reusing form the layer engines drive)
    /// is equally invariant: worker-local state persists across jobs without
    /// leaking into results.
    #[test]
    fn ordered_map_with_is_thread_invariant(
        jobs in 1usize..120,
        seed in any::<u64>(),
    ) {
        #[derive(Default)]
        struct Arena(Vec<u64>);
        let run = |threads: usize| {
            pool::ordered_map_with(threads, jobs, Arena::default, |arena, i| {
                // The arena grows monotonically per worker; results must not
                // depend on how much history this worker has accumulated.
                arena.0.push(i as u64);
                spin(seed ^ i as u64, 32 + (i as u64 % 7) * 128)
            })
        };
        let baseline = run(1);
        for threads in &THREAD_CURVE[1..] {
            prop_assert_eq!(&baseline, &run(*threads));
        }
    }
}

fn conv_operands(spec: &ConvSpec, seed: u64) -> (Tensor3, Tensor4) {
    let p8 = Precision::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor3::from_vec(
        spec.input_shape(),
        synthetic_activations(
            &mut rng,
            spec.input_shape().len(),
            p8,
            ValueDistribution::activations(),
        ),
    )
    .unwrap();
    let weights = Tensor4::from_vec(
        spec.weight_shape(),
        synthetic_weights(
            &mut rng,
            spec.weight_shape().len(),
            p8,
            ValueDistribution::weights(),
        ),
    )
    .unwrap();
    (input, weights)
}

fn wide_geometry() -> LoomGeometry {
    LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    }
}

/// A conv layer large enough that the cost model splits it into window-chunk
/// tasks is bit-identical — outputs, cycles, and reduced-group counts — at
/// every thread budget.
#[test]
fn window_chunked_conv_is_thread_invariant() {
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let (input, weights) = conv_operands(&spec, 11);
    let p8 = Precision::new(8).unwrap();
    let baseline = FunctionalLoom::new(wide_geometry()).run_conv(&spec, &input, &weights, p8, p8);
    for threads in THREAD_CURVE {
        let run = FunctionalLoom::new(wide_geometry())
            .with_threads(threads)
            .run_conv(&spec, &input, &weights, p8, p8);
        assert_eq!(baseline, run, "threads={threads}");
    }
}

/// A conv layer with few window groups but many filters — the shape that
/// engages *filter tiles* (the batch-of-1 latency decomposition, where
/// detection folds run per window group and only tile 0 accounts cycles) —
/// is bit-identical at every thread budget.
#[test]
fn filter_tiled_conv_is_thread_invariant() {
    // 6x6 input, 3x3 kernel: 16 windows = 2 window groups at 8 columns, so
    // any budget beyond 2 tasks must come from filter tiling.
    let spec = ConvSpec::simple(96, 6, 6, 128, 3);
    let (input, weights) = conv_operands(&spec, 23);
    let p8 = Precision::new(8).unwrap();
    let baseline = FunctionalLoom::new(wide_geometry()).run_conv(&spec, &input, &weights, p8, p8);
    for threads in THREAD_CURVE {
        let run = FunctionalLoom::new(wide_geometry())
            .with_threads(threads)
            .run_conv(&spec, &input, &weights, p8, p8);
        assert_eq!(baseline, run, "threads={threads}");
    }
}

fn zoo_input(graph: &LayerGraph, seed: u64) -> Tensor3 {
    let shape = graph.input_shape().expect("zoo graphs start with a conv");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor3::from_vec(
        shape,
        synthetic_activations(
            &mut rng,
            shape.len(),
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        ),
    )
    .unwrap()
}

/// Whole-network batch-of-1 inference: with a single input, every drop of
/// parallelism comes from intra-layer tasks. The runs — traces, cycles,
/// reduced groups — must be bit-identical to the serial engine at every
/// thread count, and to the golden graph executor.
#[test]
fn batch_of_one_network_matches_the_serial_engine() {
    let graph = graphs::reduced_by_name("MiniAlexNet").expect("reduced zoo has MiniAlexNet");
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 2018);
    let inputs = [zoo_input(&graph, 77)];
    let options = InferenceOptions::default();
    let golden = graph
        .run_batch(&params, &inputs, options)
        .expect("zoo graphs chain by construction");
    let serial = NetworkEngine::new(wide_geometry())
        .with_threads(1)
        .run_batch(&graph, &params, &inputs, options)
        .expect("zoo graphs chain by construction");
    assert!(
        serial.iter().map(|r| &r.trace).eq(golden.iter()),
        "serial engine diverged from the golden executor"
    );
    for threads in &THREAD_CURVE[1..] {
        let parallel = NetworkEngine::new(wide_geometry())
            .with_threads(*threads)
            .run_batch(&graph, &params, &inputs, options)
            .expect("zoo graphs chain by construction");
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

/// Batch items whose activation precisions differ get *different* cost-model
/// plans: an almost-binary input is cheap enough to stay a single task while
/// an 8-bit sibling splits into several. The batched conv fan must follow
/// each item's own task count — the old code assumed item 0's count for
/// everyone, which either silently zeroed the larger item's extra output
/// rectangles or ran the smaller item with out-of-range task indices.
#[test]
fn mixed_precision_batch_with_divergent_plans_is_thread_invariant() {
    // 196 windows x 288 weights/filter x 32 filters ~ 1.8M MACs: at 8-bit
    // activations the modeled cost crosses the task grain (multi-task plan),
    // at 2-bit it stays under it (single-task plan).
    let spec = ConvSpec::simple(32, 16, 16, 32, 3);
    let graph = LayerGraph::from_network(
        &NetworkBuilder::new("mixed")
            .conv("conv1", spec)
            .build()
            .expect("single-conv network builds"),
    );
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 2018);
    let shape = graph.input_shape().expect("graph starts with a conv");
    let wide = zoo_input(&graph, 99);
    let narrow = Tensor3::from_vec(shape, (0..shape.len()).map(|i| (i % 2) as i32).collect())
        .expect("shape-sized data");
    let options = InferenceOptions::default();
    for inputs in [[wide.clone(), narrow.clone()], [narrow, wide]] {
        let serial = NetworkEngine::new(wide_geometry())
            .with_threads(1)
            .run_batch(&graph, &params, &inputs, options)
            .expect("zoo graphs chain by construction");
        for threads in &THREAD_CURVE[1..] {
            let parallel = NetworkEngine::new(wide_geometry())
                .with_threads(*threads)
                .run_batch(&graph, &params, &inputs, options)
                .expect("zoo graphs chain by construction");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }
}

/// Batched inference fans (item x intra-layer task) jobs; the fan must be
/// invariant across budgets that divide the batch evenly, unevenly, and
/// exceed it.
#[test]
fn batched_network_is_thread_invariant() {
    let graph = graphs::reduced_by_name("MiniNiN").expect("reduced zoo has MiniNiN");
    let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(8).unwrap()], 2018);
    let inputs: Vec<Tensor3> = (0..3).map(|i| zoo_input(&graph, 500 + i)).collect();
    let options = InferenceOptions::default();
    let serial = NetworkEngine::new(wide_geometry())
        .with_threads(1)
        .run_batch(&graph, &params, &inputs, options)
        .expect("zoo graphs chain by construction");
    for threads in &THREAD_CURVE[1..] {
        let parallel = NetworkEngine::new(wide_geometry())
            .with_threads(*threads)
            .run_batch(&graph, &params, &inputs, options)
            .expect("zoo graphs chain by construction");
        assert_eq!(serial, parallel, "threads={threads}");
    }
}
