//! Invariants lifted straight from the paper's analytical claims (DESIGN.md
//! §5): ideal speedup formulas, never-worse-than-baseline at 16 bits,
//! monotonicity in precision, and MAC conservation.

use loom_core::loom_model::layer::{ConvSpec, FcSpec};
use loom_core::loom_model::zoo;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::LayerPrecisionSpec;
use loom_core::loom_precision::{table1, AccuracyTarget};
use loom_core::loom_sim::config::{EquivalentConfig, LoomVariant};
use loom_core::loom_sim::engine::{assignment_from_profile, AcceleratorKind, Simulator};
use loom_core::loom_sim::loom::{conv_schedule, fc_schedule};
use loom_core::loom_sim::{dpnn, stripes};
use proptest::prelude::*;

fn p(bits: u8) -> Precision {
    Precision::new(bits).unwrap()
}

/// A large, perfectly tiled CVL used to test the ideal-speedup laws.
fn tiled_conv() -> ConvSpec {
    ConvSpec {
        in_channels: 128,
        in_height: 34,
        in_width: 34,
        filters: 256,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 0,
        groups: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CVL law: Loom outperforms DPNN by 256/(Pa×Pw) on perfectly tiled layers
    /// (within 2% for rounding and pipeline fill).
    #[test]
    fn conv_speedup_law(pa in 1u8..=16, pw in 1u8..=16) {
        let cfg = EquivalentConfig::BASELINE_128;
        let spec = tiled_conv();
        let lm = conv_schedule(&cfg.loom(LoomVariant::Lm1b), &spec, &LayerPrecisionSpec::static_profile(p(pa), p(pw)));
        let base = dpnn::conv_cycles(&cfg.dpnn(), &spec);
        let ideal = 256.0 / (f64::from(pa) * f64::from(pw));
        let actual = base as f64 / lm.cycles as f64;
        prop_assert!((actual / ideal - 1.0).abs() < 0.02, "pa={pa} pw={pw}: {actual} vs ideal {ideal}");
    }

    /// FCL law: Loom outperforms DPNN by 16/Pw on large FCLs, and activation
    /// precision has no effect.
    #[test]
    fn fc_speedup_law(pw in 1u8..=16, pa in 1u8..=16) {
        let cfg = EquivalentConfig::BASELINE_128;
        let spec = FcSpec::new(4096, 4096);
        let lm = fc_schedule(&cfg.loom(LoomVariant::Lm1b), &spec, &LayerPrecisionSpec::static_profile(p(pa), p(pw)), true);
        let base = dpnn::fc_cycles(&cfg.dpnn(), &spec);
        let ideal = 16.0 / f64::from(pw);
        let actual = base as f64 / lm.cycles as f64;
        prop_assert!((actual / ideal - 1.0).abs() < 0.03, "pw={pw}: {actual} vs ideal {ideal}");
    }

    /// Stripes law: 16/Pa on CVLs, nothing on FCLs.
    #[test]
    fn stripes_speedup_law(pa in 1u8..=16) {
        let cfg = EquivalentConfig::BASELINE_128;
        let spec = tiled_conv();
        let s = stripes::conv_cycles_static(&cfg.dpnn(), &spec, p(pa));
        let base = dpnn::conv_cycles(&cfg.dpnn(), &spec);
        let ideal = 16.0 / f64::from(pa);
        let actual = base as f64 / s as f64;
        prop_assert!((actual / ideal - 1.0).abs() < 0.02, "pa={pa}: {actual} vs ideal {ideal}");
    }

    /// Monotonicity: Loom CVL cycles never decrease when either precision grows.
    #[test]
    fn conv_cycles_monotone_in_precision(pa in 1u8..=15, pw in 1u8..=15) {
        let cfg = EquivalentConfig::BASELINE_128;
        let spec = tiled_conv();
        let g = cfg.loom(LoomVariant::Lm1b);
        let base = conv_schedule(&g, &spec, &LayerPrecisionSpec::static_profile(p(pa), p(pw))).cycles;
        let more_pa = conv_schedule(&g, &spec, &LayerPrecisionSpec::static_profile(p(pa + 1), p(pw))).cycles;
        let more_pw = conv_schedule(&g, &spec, &LayerPrecisionSpec::static_profile(p(pa), p(pw + 1))).cycles;
        prop_assert!(more_pa >= base);
        prop_assert!(more_pw >= base);
    }

    /// The wider variants never beat LM1b on convolutional layers and all
    /// variants coincide when the precision is a multiple of four.
    #[test]
    fn variant_ordering(pa in 1u8..=16, pw in 1u8..=16) {
        let cfg = EquivalentConfig::BASELINE_128;
        let spec = tiled_conv();
        let prec = LayerPrecisionSpec::static_profile(p(pa), p(pw));
        let c1 = conv_schedule(&cfg.loom(LoomVariant::Lm1b), &spec, &prec).cycles;
        let c2 = conv_schedule(&cfg.loom(LoomVariant::Lm2b), &spec, &prec).cycles;
        let c4 = conv_schedule(&cfg.loom(LoomVariant::Lm4b), &spec, &prec).cycles;
        prop_assert!(c2 >= c1);
        prop_assert!(c4 >= c2);
        if pa % 4 == 0 {
            prop_assert_eq!(c1, c2);
            prop_assert_eq!(c2, c4);
        }
    }
}

/// At 16-bit precisions Loom matches DPNN on every layer of every evaluated
/// network (within 2% for tiling and pipeline fill) — it is never meaningfully
/// worse than the baseline it replaces.
#[test]
fn loom_matches_dpnn_at_full_precision_on_all_networks() {
    let sim = Simulator::baseline_128();
    for net in zoo::all() {
        let assignment = loom_core::loom_sim::engine::PrecisionAssignment::full_precision(&net);
        let dpnn_run = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let lm_run = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        for (d, l) in dpnn_run.layers.iter().zip(lm_run.layers.iter()) {
            if !d.is_compute() {
                continue;
            }
            // Loom can only be slower through under-utilisation (few filters /
            // few outputs); it must never be *faster* than DPNN at 16 bits and
            // never slower than the under-utilisation bound of 2x.
            assert!(
                l.cycles + 2 >= d.cycles,
                "{}: {} vs {}",
                l.layer_name,
                l.cycles,
                d.cycles
            );
            assert!(
                l.cycles <= d.cycles * 3,
                "{}: {} vs {}",
                l.layer_name,
                l.cycles,
                d.cycles
            );
        }
    }
}

/// The cycle models respect the compute-bandwidth bound: no accelerator ever
/// executes more MACs per cycle than its peak.
#[test]
fn no_accelerator_exceeds_peak_bandwidth() {
    let sim = Simulator::baseline_128();
    for net in zoo::all() {
        let profile = table1::profile(net.name(), AccuracyTarget::Lossless).unwrap();
        let assignment = assignment_from_profile(&net, &profile, Some(0.7), None);
        for kind in [
            AcceleratorKind::Dpnn,
            AcceleratorKind::Stripes,
            AcceleratorKind::DStripes,
            AcceleratorKind::Loom(LoomVariant::Lm1b),
        ] {
            let run = sim.simulate(kind, &net, &assignment);
            for layer in &run.layers {
                if layer.cycles == 0 {
                    continue;
                }
                let macs_per_cycle = layer.macs as f64 / layer.cycles as f64;
                // 128 MAC-equivalents per cycle is the peak; precision scaling
                // lets the bit-serial designs exceed it by up to 256x (1-bit
                // data) but never beyond.
                let bound = match kind {
                    AcceleratorKind::Dpnn => 128.0 * 1.01,
                    _ => 128.0 * 256.0 * 1.01,
                };
                assert!(
                    macs_per_cycle <= bound,
                    "{kind}: {} does {macs_per_cycle} MACs/cycle",
                    layer.layer_name
                );
            }
        }
    }
}

/// MAC conservation: every simulator reports exactly the layer's analytic MAC
/// count regardless of precision or accelerator.
#[test]
fn mac_counts_are_conserved() {
    let sim = Simulator::baseline_128();
    let net = zoo::vgg_m();
    let profile = table1::profile("VGGM", AccuracyTarget::Lossless).unwrap();
    let assignment = assignment_from_profile(&net, &profile, Some(0.7), None);
    for kind in AcceleratorKind::all() {
        let run = sim.simulate(kind, &net, &assignment);
        assert_eq!(run.total_macs(), net.total_macs(), "{kind}");
    }
}
