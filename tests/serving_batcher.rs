//! Property suite for the micro-batcher: arbitrary arrival orders, arrival
//! timings, batch windows, thread budgets and mixed models must produce
//! per-request results bit-identical to serial one-at-a-time execution on
//! the direct engine (the same invariance contract `pool_invariance.rs`
//! pins for the pool, lifted to the serving layer).

use loom_core::loom_model::inference::InferenceOptions;
use loom_core::loom_sim::loom::network::NetworkEngine;
use loom_serve::batch::{BatchConfig, MicroBatcher, Tier};
use loom_serve::model::{serving_geometry, ModelCatalog, ServedModel};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Models the property jobs draw from: one FC-only head plus two conv
/// networks, so batches mix cheap and expensive, conv and FC work.
const MODELS: [&str; 3] = ["MiniMLP", "MiniAlexNet", "MiniNiN"];

/// Distinct inputs per model.
const VARIANTS: u64 = 4;

struct Env {
    models: Vec<Arc<ServedModel>>,
    /// Serial one-at-a-time reference: outputs and cycles per
    /// `(model, variant, tier)`, from the direct uncached engine.
    expected: HashMap<(usize, u64, Tier), (Vec<i32>, u64)>,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let catalog = ModelCatalog::from_names(MODELS);
        let models: Vec<Arc<ServedModel>> = catalog.models().to_vec();
        let dynamic = NetworkEngine::new(serving_geometry());
        let fixed = dynamic.without_dynamic_precision();
        let mut expected = HashMap::new();
        for (mi, model) in models.iter().enumerate() {
            for variant in 0..VARIANTS {
                let input = model.synthetic_input(variant);
                for (tier, engine) in [(Tier::Dynamic, &dynamic), (Tier::Static, &fixed)] {
                    let run = engine
                        .run(
                            &model.graph,
                            &model.params,
                            &input,
                            InferenceOptions::default(),
                        )
                        .expect("catalog inputs always fit their graphs");
                    expected.insert(
                        (mi, variant, tier),
                        (run.trace.final_outputs().to_vec(), run.cycles),
                    );
                }
            }
        }
        Env { models, expected }
    })
}

/// One submitted job, decoded from a random seed: which model and input,
/// which tier, how many tensors it carries, and how long the submitter
/// stalls before enqueueing (arrival-order scrambling).
#[derive(Debug, Clone, Copy)]
struct JobPlan {
    model: usize,
    variant: u64,
    tier: Tier,
    items: usize,
    delay: Duration,
}

impl JobPlan {
    fn decode(seed: u64) -> JobPlan {
        JobPlan {
            model: (seed % MODELS.len() as u64) as usize,
            variant: (seed >> 8) % VARIANTS,
            tier: if (seed >> 16) % 4 == 0 {
                Tier::Static
            } else {
                Tier::Dynamic
            },
            items: ((seed >> 24) % 2 + 1) as usize,
            delay: Duration::from_micros((seed >> 32) % 2_500),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any arrival order/timing, any batching knobs: every job's reply is
    /// bit-identical (outputs *and* cycles) to running its inputs serially,
    /// one at a time, on the direct engine.
    #[test]
    fn coalesced_results_match_serial_one_at_a_time(
        seeds in prop::collection::vec(any::<u64>(), 1..12),
        window_ms in 0u64..4,
        max_batch in 1usize..6,
        threads in 1usize..5,
    ) {
        let env = env();
        let batcher = Arc::new(MicroBatcher::start(BatchConfig {
            window: Duration::from_millis(window_ms),
            max_batch,
            max_queue: 1024, // admission control is covered elsewhere
            threads,
        }));
        // A request can never carry more tensors than one batch holds — the
        // server enforces this before submitting, so the plans respect it.
        let plans: Vec<JobPlan> = seeds
            .iter()
            .map(|&s| {
                let mut plan = JobPlan::decode(s);
                plan.items = plan.items.min(max_batch);
                plan
            })
            .collect();
        let workers: Vec<_> = plans
            .iter()
            .map(|&plan| {
                let batcher = Arc::clone(&batcher);
                let model = Arc::clone(&env.models[plan.model]);
                std::thread::spawn(move || {
                    std::thread::sleep(plan.delay);
                    let inputs: Vec<_> = (0..plan.items)
                        .map(|k| model.synthetic_input((plan.variant + k as u64) % VARIANTS))
                        .collect();
                    let receiver = batcher
                        .submit(model, plan.tier, inputs)
                        .expect("queue is sized above the job count");
                    receiver.recv().expect("dispatcher always replies")
                })
            })
            .collect();
        for (plan, worker) in plans.iter().zip(workers) {
            let reply = worker.join().expect("submitters never panic");
            let reply = match reply {
                Ok(reply) => reply,
                Err(e) => return Err(TestCaseError::fail(format!("dispatch failed: {e}"))),
            };
            prop_assert_eq!(reply.outputs.len(), plan.items);
            prop_assert!(reply.batch_items >= plan.items);
            prop_assert!(reply.batch_items <= max_batch.max(plan.items));
            for k in 0..plan.items {
                let key = (plan.model, (plan.variant + k as u64) % VARIANTS, plan.tier);
                let (want_outputs, want_cycles) = &env.expected[&key];
                prop_assert!(
                    &reply.outputs[k] == want_outputs,
                    "model {} variant {} tier {:?} diverged from serial execution",
                    MODELS[plan.model],
                    key.1,
                    plan.tier
                );
                prop_assert_eq!(reply.cycles[k], *want_cycles);
            }
        }
    }
}
