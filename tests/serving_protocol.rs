//! Adversarial protocol suite: malformed HTTP, hostile bodies, slow
//! clients and mid-response disconnects must each get the documented status
//! code (or a silent drop) — and the server must stay fully healthy
//! afterwards. Every test ends by completing a normal request on a fresh
//! connection.

use loom_serve::batch::BatchConfig;
use loom_serve::client::Client;
use loom_serve::json::Json;
use loom_serve::model::ModelCatalog;
use loom_serve::server::{Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// A server with a small body cap and a short read timeout, so the
/// adversarial paths trip quickly.
fn hostile_target() -> Server {
    Server::start(
        ModelCatalog::from_names(["MiniMLP"]),
        ServerConfig {
            port: 0,
            batch: BatchConfig {
                window: Duration::from_millis(1),
                ..BatchConfig::default()
            },
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 64 * 1024,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral loopback port")
}

fn healthy_body() -> String {
    let catalog = ModelCatalog::from_names(["MiniMLP"]);
    let model = catalog.find("MiniMLP").unwrap();
    let input = model.synthetic_input(0);
    Json::Object(vec![
        ("model".to_string(), Json::from("MiniMLP")),
        (
            "inputs".to_string(),
            Json::Array(vec![Json::Array(
                input
                    .as_slice()
                    .iter()
                    .map(|&v| Json::from(v as i64))
                    .collect(),
            )]),
        ),
    ])
    .to_string()
}

/// Asserts the server still serves real traffic on a fresh connection.
fn assert_healthy(server: &Server, body: &str) {
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    let response = client.infer(body).unwrap();
    assert_eq!(response.status, 200, "server unhealthy: {}", response.body);
}

#[test]
fn malformed_http_gets_400_and_the_server_survives() {
    let server = hostile_target();
    let body = healthy_body();
    for raw in [
        &b"TOTAL GARBAGE\r\n\r\n"[..],
        b"GET / HTTP/9.9\r\n\r\n",
        b"POST /v1/infer HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon-header\r\n\r\n",
    ] {
        let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
        client.send_raw(raw).unwrap();
        let response = client.read_response().unwrap();
        assert_eq!(
            response.status,
            400,
            "for {:?}",
            String::from_utf8_lossy(raw)
        );
    }
    assert_healthy(&server, &body);
}

#[test]
fn bad_protocol_payloads_get_the_documented_codes() {
    let server = hostile_target();
    let body = healthy_body();
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    // Unknown endpoint.
    assert_eq!(
        client.request("POST", "/v2/wrong", "{}").unwrap().status,
        404
    );
    // Unsupported method.
    assert_eq!(
        client.request("PUT", "/v1/infer", "{}").unwrap().status,
        405
    );
    // Non-JSON body.
    assert_eq!(client.infer("this is not json").unwrap().status, 400);
    // Valid JSON, missing fields.
    assert_eq!(client.infer("{}").unwrap().status, 400);
    // Unknown model.
    let unknown = r#"{"model":"NoSuchNet","inputs":[[1]]}"#;
    assert_eq!(client.infer(unknown).unwrap().status, 404);
    // Unknown tier.
    let bad_tier = r#"{"model":"MiniMLP","tier":"turbo","inputs":[[1]]}"#;
    assert_eq!(client.infer(bad_tier).unwrap().status, 400);
    // Wrong input length.
    let short = r#"{"model":"MiniMLP","inputs":[[1,2,3]]}"#;
    assert_eq!(client.infer(short).unwrap().status, 400);
    // Non-integer tensor values.
    let fractional = format!(
        r#"{{"model":"MiniMLP","inputs":[[{}1.5]]}}"#,
        "7,".repeat(783)
    );
    assert_eq!(client.infer(&fractional).unwrap().status, 400);
    // Out-of-range values.
    let huge = format!(
        r#"{{"model":"MiniMLP","inputs":[[{}4294967296]]}}"#,
        "7,".repeat(783)
    );
    assert_eq!(client.infer(&huge).unwrap().status, 400);
    assert_healthy(&server, &body);
}

#[test]
fn oversized_bodies_get_413() {
    let server = hostile_target();
    let body = healthy_body();
    // Content-Length over the cap: rejected before the payload is read.
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    client
        .send_raw(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n")
        .unwrap();
    assert_eq!(client.read_response().unwrap().status, 413);
    // Too many tensors in one request: per-request batch cap.
    let catalog = ModelCatalog::from_names(["MiniMLP"]);
    let model = catalog.find("MiniMLP").unwrap();
    let tensor = Json::Array(
        model
            .synthetic_input(0)
            .as_slice()
            .iter()
            .map(|&v| Json::from(v as i64))
            .collect(),
    );
    let over_batch = Json::Object(vec![
        ("model".to_string(), Json::from("MiniMLP")),
        (
            "inputs".to_string(),
            Json::Array(vec![tensor; BatchConfig::default().max_batch + 1]),
        ),
    ])
    .to_string();
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    assert_eq!(client.infer(&over_batch).unwrap().status, 413);
    assert_healthy(&server, &body);
}

#[test]
fn slow_loris_hits_the_read_timeout_and_is_dropped() {
    let server = hostile_target();
    let body = healthy_body();
    // Drip half a request line and stall past the 300 ms read timeout.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"POST /v1/inf").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buffer = [0u8; 64];
    use std::io::Read;
    // The server must close without sending anything: the first read after
    // the timeout observes EOF (Ok(0)), not a response.
    let got = stream.read(&mut buffer).unwrap();
    assert_eq!(got, 0, "slow-loris connections get no response bytes");
    assert_healthy(&server, &body);
}

#[test]
fn truncated_body_and_mid_response_disconnects_leave_the_server_up() {
    let server = hostile_target();
    let body = healthy_body();
    // Promise 500 body bytes, send 10, then half-close.
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    client
        .send_raw(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 500\r\n\r\n0123456789")
        .unwrap();
    client.shutdown_write().unwrap();
    // Fire a real request and vanish before reading the response.
    let mut rude = Client::connect(server.addr(), CLIENT_TIMEOUT).unwrap();
    rude.send_raw(
        format!(
            "POST /v1/infer HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    drop(rude);
    // The server must shrug both off.
    assert_healthy(&server, &body);
}

#[test]
fn queue_overflow_answers_429_and_recovers() {
    // One-item queue, long window, batch too large to fill: the second
    // concurrent request must be refused with 429 while the first is still
    // waiting out its window — then, once drained, traffic flows again.
    let server = Server::start(
        ModelCatalog::from_names(["MiniMLP"]),
        ServerConfig {
            port: 0,
            batch: BatchConfig {
                window: Duration::from_millis(700),
                max_batch: 8,
                max_queue: 1,
                threads: 1,
            },
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let body = healthy_body();
    let addr = server.addr();
    let first = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
            client.infer(&body).unwrap()
        })
    };
    // Give the first request time to occupy the queue, then overflow it.
    std::thread::sleep(Duration::from_millis(200));
    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
    let refused = client.infer(&body).unwrap();
    assert_eq!(refused.status, 429, "{}", refused.body);
    let accepted = first.join().unwrap();
    assert_eq!(accepted.status, 200, "{}", accepted.body);
    // After the window drains the same connection works again.
    let retry = client.infer(&body).unwrap();
    assert_eq!(retry.status, 200, "{}", retry.body);
}
