//! Determinism suite for the parallel sweep runner: the fan-out across worker
//! threads must change neither the values nor the ordering of any reproduced
//! table or figure relative to the serial path.

use loom_core::experiment::{evaluate_all_networks, ExperimentSettings};
use loom_core::loom_precision::AccuracyTarget;
use loom_core::scaling::{figure5, figure5_with};
use loom_core::sweep::SweepRunner;
use loom_core::tables::{figure4, figure4_with, table2, table2_with, table4, table4_with};

/// Bit-wise float equality that also equates NaNs (absent layer classes are
/// reported as NaN, and NaN != NaN under `==`).
fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[test]
fn parallel_zoo_evaluation_matches_serial_ordering_and_values() {
    let settings = ExperimentSettings::default();
    let serial = evaluate_all_networks(&settings);
    let parallel = SweepRunner::new(4).evaluate_zoo(&settings);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.network, p.network, "network ordering must be stable");
        assert_eq!(s.has_fc, p.has_fc);
        assert_eq!(s.dpnn, p.dpnn, "baseline sims must be bit-identical");
        let s_kinds: Vec<_> = s.relatives.iter().map(|(k, _)| *k).collect();
        let p_kinds: Vec<_> = p.relatives.iter().map(|(k, _)| *k).collect();
        assert_eq!(s_kinds, p_kinds, "comparator ordering must be stable");
        for ((_, sr), (_, pr)) in s.relatives.iter().zip(p.relatives.iter()) {
            assert!(same_bits(sr.conv_speedup, pr.conv_speedup));
            assert!(same_bits(sr.fc_speedup, pr.fc_speedup));
            assert!(same_bits(sr.all_speedup, pr.all_speedup));
            assert!(same_bits(sr.conv_efficiency, pr.conv_efficiency));
            assert!(same_bits(sr.fc_efficiency, pr.fc_efficiency));
            assert!(same_bits(sr.all_efficiency, pr.all_efficiency));
        }
    }
}

#[test]
fn parallel_table2_renders_identically_to_serial() {
    let runner = SweepRunner::new(4);
    let serial = table2(AccuracyTarget::Lossless);
    let parallel = table2_with(&runner, AccuracyTarget::Lossless);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn parallel_table4_and_figure4_render_identically_to_serial() {
    let runner = SweepRunner::new(4);
    assert_eq!(table4().render(), table4_with(&runner).render());
    assert_eq!(figure4().render(), figure4_with(&runner).render());
}

#[test]
fn parallel_figure5_matches_serial_points() {
    let runner = SweepRunner::new(4);
    let serial = figure5();
    let parallel = figure5_with(&runner);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (s, p) in serial.points.iter().zip(parallel.points.iter()) {
        assert_eq!(s.config, p.config, "design-point ordering must be stable");
        assert!(same_bits(s.loom_all, p.loom_all));
        assert!(same_bits(s.loom_conv, p.loom_conv));
        assert!(same_bits(s.dstripes_all, p.dstripes_all));
        assert!(same_bits(s.dstripes_conv, p.dstripes_conv));
        assert!(same_bits(s.loom_fps_all, p.loom_fps_all));
        assert!(same_bits(s.loom_fps_conv, p.loom_fps_conv));
        assert_eq!(s.weight_memory_bytes, p.weight_memory_bytes);
        assert!(same_bits(s.area_overhead, p.area_overhead));
        assert!(same_bits(s.energy_efficiency, p.energy_efficiency));
    }
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn runner_cache_is_reused_across_tables() {
    // `table2(Lossless)` and `figure4` share the default-settings sweep: the
    // second call must add no new simulations beyond what it truly needs.
    let runner = SweepRunner::new(2);
    let _ = table2_with(&runner, AccuracyTarget::Lossless);
    let after_table2 = runner.cached_results();
    let _ = figure4_with(&runner);
    assert_eq!(
        runner.cached_results(),
        after_table2,
        "figure4 re-simulated results table2 already cached"
    );
}
