//! Workspace wiring smoke test: every zoo network must construct and run
//! through `evaluate_network` (all accelerators) without panicking. This
//! guards the crate graph itself — if any crate's exports or the manifest
//! wiring regress, this is the first suite to fail.

use loom_core::experiment::{evaluate_network, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_model::Network;
use loom_core::loom_sim::engine::AcceleratorKind;

fn smoke(net: &Network) {
    assert!(!net.layers().is_empty(), "{} has no layers", net.name());
    assert!(net.conv_macs() > 0, "{} has no conv work", net.name());
    let eval = evaluate_network(net, &ExperimentSettings::default());
    assert!(
        eval.dpnn.total_cycles() > 0,
        "{}: baseline simulated zero cycles",
        net.name()
    );
    for kind in AcceleratorKind::all() {
        if kind == AcceleratorKind::Dpnn {
            continue; // the baseline itself; relatives are measured against it
        }
        let result = eval
            .result_for(kind)
            .unwrap_or_else(|| panic!("{}: no result for {kind:?}", net.name()));
        assert!(
            result.conv_speedup.is_finite() && result.conv_speedup > 0.0,
            "{}: bad conv speedup for {kind:?}",
            net.name()
        );
    }
}

#[test]
fn alexnet_evaluates() {
    smoke(&zoo::alexnet());
}

#[test]
fn nin_evaluates() {
    smoke(&zoo::nin());
}

#[test]
fn googlenet_evaluates() {
    smoke(&zoo::googlenet());
}

#[test]
fn vgg_networks_evaluate() {
    smoke(&zoo::vgg_s());
    smoke(&zoo::vgg_m());
    smoke(&zoo::vgg19());
}
