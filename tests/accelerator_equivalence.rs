//! Equivalence suite for the `Accelerator` trait refactor: every trait
//! implementation must produce `NetworkSim` results bit-identical to the
//! pre-refactor enum dispatch, across all zoo networks and both accuracy
//! targets.
//!
//! The oracle below is a line-for-line reconstruction of the `match`-based
//! dispatch the engine used before the trait existed (DPNN/Stripes/DStripes
//! over the bit-parallel geometry, Loom over the SIP schedules, with the
//! per-kind storage precisions). If a trait impl ever drifts from the
//! datapath semantics, these tests pinpoint the layer and kind.
//!
//! The suite iterates the simulator's [`Registry`] rather than a hard-coded
//! kind list, so a newly registered backend is exercised automatically (the
//! oracle itself still keys off the built-in kinds it reconstructs).

use loom_core::experiment::{build_assignment, ExperimentSettings};
use loom_core::loom_mem::traffic::{layer_traffic, StoragePrecision};
use loom_core::loom_model::layer::LayerKind;
use loom_core::loom_model::network::Network;
use loom_core::loom_model::zoo;
use loom_core::loom_model::Precision;
use loom_core::loom_precision::trace::LayerPrecisionSpec;
use loom_core::loom_precision::AccuracyTarget;
use loom_core::loom_sim::counts::{LayerClass, LayerSim, NetworkSim};
use loom_core::loom_sim::engine::{AcceleratorKind, PrecisionAssignment, Simulator};
use loom_core::loom_sim::loom::{conv_schedule, fc_schedule};
use loom_core::loom_sim::{dpnn, stripes, EquivalentConfig};

/// The pre-refactor per-layer dispatch, reconstructed verbatim.
fn legacy_layer_sim(
    kind: AcceleratorKind,
    config: EquivalentConfig,
    name: &str,
    layer: &LayerKind,
    precision: &LayerPrecisionSpec,
) -> LayerSim {
    let storage = match kind {
        AcceleratorKind::Dpnn => StoragePrecision::baseline(),
        AcceleratorKind::Stripes | AcceleratorKind::DStripes => {
            if layer.is_conv() {
                StoragePrecision::packed(precision.activation, Precision::FULL)
            } else {
                StoragePrecision::baseline()
            }
        }
        AcceleratorKind::Loom(_) => {
            StoragePrecision::packed(precision.activation, precision.weight)
        }
    };
    let traffic = layer_traffic(layer, storage);
    let (class, cycles, utilization) = match layer {
        LayerKind::Conv(spec) => {
            let (cycles, utilization) = match kind {
                AcceleratorKind::Dpnn => {
                    let g = config.dpnn();
                    (
                        dpnn::conv_cycles(&g, spec),
                        dpnn::conv_utilization(&g, spec),
                    )
                }
                AcceleratorKind::Stripes => {
                    let g = config.dpnn();
                    (
                        stripes::conv_cycles_static(&g, spec, precision.activation),
                        dpnn::conv_utilization(&g, spec),
                    )
                }
                AcceleratorKind::DStripes => {
                    let g = config.dpnn();
                    (
                        stripes::conv_cycles_dynamic(
                            &g,
                            spec,
                            precision.activation,
                            &precision.dynamic_activation,
                        ),
                        dpnn::conv_utilization(&g, spec),
                    )
                }
                AcceleratorKind::Loom(variant) => {
                    let g = config.loom(variant);
                    let r = conv_schedule(&g, spec, precision);
                    (r.cycles, r.utilization)
                }
            };
            (LayerClass::Conv, cycles, utilization)
        }
        LayerKind::FullyConnected(spec) => {
            let (cycles, utilization) = match kind {
                AcceleratorKind::Dpnn | AcceleratorKind::Stripes | AcceleratorKind::DStripes => {
                    let g = config.dpnn();
                    (dpnn::fc_cycles(&g, spec), dpnn::fc_utilization(&g, spec))
                }
                AcceleratorKind::Loom(variant) => {
                    let g = config.loom(variant);
                    let r = fc_schedule(&g, spec, precision, true);
                    (r.cycles, r.utilization)
                }
            };
            (LayerClass::FullyConnected, cycles, utilization)
        }
        LayerKind::MaxPool(_) => (LayerClass::Other, 0, 1.0),
    };
    LayerSim {
        layer_name: name.to_string(),
        class,
        macs: layer.macs(),
        cycles,
        utilization,
        storage,
        traffic,
    }
}

/// The pre-refactor whole-network walk.
fn legacy_network_sim(
    kind: AcceleratorKind,
    config: EquivalentConfig,
    network: &Network,
    assignment: &PrecisionAssignment,
) -> NetworkSim {
    let mut layers = Vec::with_capacity(network.layers().len());
    let mut compute_idx = 0usize;
    for layer in network.layers() {
        let full = LayerPrecisionSpec::full_precision();
        let spec = if layer.kind.is_compute() {
            let s = assignment.for_layer(compute_idx);
            compute_idx += 1;
            s
        } else {
            &full
        };
        layers.push(legacy_layer_sim(
            kind,
            config,
            &layer.name,
            &layer.kind,
            spec,
        ));
    }
    NetworkSim {
        accelerator: kind.to_string(),
        network: network.name().to_string(),
        layers,
    }
}

#[test]
fn trait_impls_match_legacy_dispatch_bit_for_bit() {
    let config = EquivalentConfig::BASELINE_128;
    let simulator = Simulator::new(config);
    for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
        let settings = ExperimentSettings {
            target,
            ..Default::default()
        };
        for network in zoo::all() {
            let assignment = build_assignment(&network, &settings);
            for acc in simulator.registry().iter() {
                let kind = acc.kind();
                let trait_sim = acc.simulate_network(&network, &assignment);
                let legacy_sim = legacy_network_sim(kind, config, &network, &assignment);
                assert_eq!(
                    trait_sim,
                    legacy_sim,
                    "{} on {} at {target} diverged from the legacy dispatch",
                    kind,
                    network.name()
                );
            }
        }
    }
}

#[test]
fn trait_impls_match_legacy_dispatch_with_per_group_weights() {
    // Table 4's per-group weight precisions exercise the AverageBits group
    // source; the trait path must agree there too.
    let config = EquivalentConfig::BASELINE_128;
    let simulator = Simulator::new(config);
    let settings = ExperimentSettings::per_group_weights();
    for network in zoo::all() {
        let assignment = build_assignment(&network, &settings);
        for acc in simulator.registry().iter() {
            let kind = acc.kind();
            let trait_sim = acc.simulate_network(&network, &assignment);
            let legacy_sim = legacy_network_sim(kind, config, &network, &assignment);
            assert_eq!(trait_sim, legacy_sim, "{} on {}", kind, network.name());
        }
    }
}

#[test]
fn trait_impls_match_legacy_dispatch_across_design_points() {
    // The Figure 5 design points change every geometry; spot-check the
    // smallest and largest against the oracle on one network with FCLs.
    let settings = ExperimentSettings::default();
    let network = zoo::alexnet();
    let assignment = build_assignment(&network, &settings);
    for macs in [32usize, 512] {
        let config = EquivalentConfig::new(macs).unwrap();
        let simulator = Simulator::new(config);
        for acc in simulator.registry().iter() {
            let kind = acc.kind();
            let trait_sim = acc.simulate_network(&network, &assignment);
            let legacy_sim = legacy_network_sim(kind, config, &network, &assignment);
            assert_eq!(trait_sim, legacy_sim, "{kind} at config {macs}");
        }
    }
}
